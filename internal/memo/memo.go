// Package memo provides the bounded, deterministic result cache behind the
// evaluation pipeline's memoized partition/schedule hot path (DESIGN.md §7).
// The pipeline re-derives identical work constantly — the Figure 9
// exhaustive search runs the detailed partitioner for every one of 2^n
// object mappings even though each function only sees 2^(objects it
// touches) distinct lock signatures, and the Unified, Profile Max and Naïve
// schemes all begin with the same unlocked RHOP pass — so keying results by
// their exact inputs collapses the repeated runs to one computation each.
//
// The cache guarantees the properties the deterministic reproduction
// depends on:
//
//   - value determinism: a key is a canonical encoding of every input the
//     cached computation reads, so whichever call fills an entry stores the
//     same value every other call would have computed — results are
//     byte-identical with the cache on or off and at every worker count;
//   - in-flight deduplication: concurrent Do calls for one key compute the
//     value once and share it (waiters block on the flight rather than
//     duplicating the work);
//   - bounded memory: completed entries are evicted least-recently-used
//     beyond the capacity. Eviction changes hit counts and wall time, never
//     values.
//
// Under a parallel worker pool the access order — and therefore the
// hit/miss statistics and the eviction victims — varies run to run; only
// Stats is order-sensitive, never a cached value.
//
// The cache can carry an optional second tier (SetTier) — in practice the
// persistent content-addressed artifact store of internal/store — consulted
// on a first-tier miss through DoCodec's value codec. Tier-2 lookups share
// the same singleflight: concurrent callers of one key wait on a single
// disk read + decode (a "promotion" into the first tier) exactly as they
// would wait on a single computation, and the promoted value is what every
// waiter sees. A tier value that fails to decode degrades to a recompute —
// the corruption contract is the store's: a corrupt cache is a cold cache,
// never a wrong value.
//
// This package is the compile-time memoization cache. It is unrelated to
// internal/cache, which simulates the paper's §5 future-work hardware
// caches (set-associative LRU data caches replacing the scratchpads).
package memo

import (
	"container/list"
	"math"
	"strconv"
)

import "sync"

import "mcpart/internal/obs"

// DefaultCapacity bounds a New(0) cache: comfortably above the largest
// exhaustive sweep the tools run by default (2^14 masks) times a typical
// function count, so the Figure 9 search never thrashes, while still
// capping memory for adversarial workloads.
const DefaultCapacity = 1 << 17

// Cache is a bounded memoization table. The zero value is not usable; use
// New. A nil *Cache is accepted by every method and behaves as a cache that
// never hits, so callers can thread an optional cache without branching.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // completed entries, most recent first
	entries map[string]*list.Element // key -> element whose Value is *entry
	flights map[string]*flight       // keys currently being computed
	tier    Tier                     // optional second (disk) tier; nil = none

	hits, misses, waits, evictions, promotions uint64

	// Mirror counters into an observer's registry (see SetObserver). The
	// nil defaults are no-ops, so the hot paths below Add unconditionally.
	oHits, oMisses, oWaits, oEvict, oPromote *obs.Counter
}

// Tier is a second cache level consulted on a first-tier miss (and filled
// after a computation). Implementations deal in encoded bytes; DoCodec's
// Codec translates. MarkCorrupt reports a value whose bytes came back fine
// but failed to decode, so the tier can invalidate the entry. All three
// methods must be safe for concurrent use and must never fail the caller:
// a broken tier behaves as one that never hits and drops writes.
type Tier interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
	MarkCorrupt(key string)
}

// Codec translates one kind of cached value to and from its canonical
// binary encoding for the second tier. Encode must be deterministic
// (identical values encode identically); Decode must reject bytes it did
// not produce (a wrong type tag, a bad shape) with an error, which DoCodec
// treats as a tier miss.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(b []byte) (any, error)
}

type entry struct {
	key   string
	value any
}

type flight struct {
	done  chan struct{}
	value any
	err   error
}

// New returns an empty cache bounded to capacity completed entries;
// capacity <= 0 selects DefaultCapacity (the repository's non-positive →
// default sentinel convention, see internal/defaults).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// SetObserver mirrors the cache's hit/miss/wait/eviction counters into
// o's registry (metrics memo_hits, memo_misses, memo_waits,
// memo_evictions) from this call on. A nil observer detaches. Safe to
// call concurrently with Do; last writer wins.
func (c *Cache) SetObserver(o *obs.Observer) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.oHits = o.Counter("memo_hits")
	c.oMisses = o.Counter("memo_misses")
	c.oWaits = o.Counter("memo_waits")
	c.oEvict = o.Counter("memo_evictions")
	c.oPromote = o.Counter("memo_promotions")
	c.mu.Unlock()
}

// SetTier attaches (or, with nil, detaches) a second cache tier consulted
// by DoCodec on first-tier misses. Attach before the first DoCodec call
// for full effect; attaching mid-run is safe and affects later calls.
func (c *Cache) SetTier(t Tier) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.tier = t
	c.mu.Unlock()
}

// Capacity returns the cache's current completed-entry bound. A nil cache
// reports zero.
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// SetCapacity re-bounds the cache to capacity completed entries (the usual
// non-positive → DefaultCapacity sentinel) and evicts least-recently-used
// entries down to the new bound immediately. Forced evictions count in
// Stats.Evictions and the memo_evictions observer mirror exactly like
// insert-time evictions. This is the daemon's memory-pressure knob: a
// smaller capacity changes hit counts and wall time, never values.
func (c *Cache) SetCapacity(capacity int) {
	if c == nil {
		return
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c.mu.Lock()
	c.cap = capacity
	c.evictTo(capacity)
	c.mu.Unlock()
}

// Shrink evicts least-recently-used completed entries until at most n
// remain, leaving the capacity bound unchanged (the cache may grow back).
// Negative n is treated as 0 (drop everything). In-flight computations are
// untouched: Shrink never blocks a compute, and a flight that completes
// after a Shrink simply inserts as the most-recent entry.
func (c *Cache) Shrink(n int) {
	if c == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	c.mu.Lock()
	c.evictTo(n)
	c.mu.Unlock()
}

// evictTo drops LRU-tail entries until at most n remain. Caller holds c.mu.
func (c *Cache) evictTo(n int) {
	for c.ll.Len() > n {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evictions++
		c.oEvict.Add(1)
	}
}

// Do returns the cached value for key, computing and storing it with
// compute on a miss. hit reports whether the value came from the cache
// (including waiting on another goroutine's in-flight computation of the
// same key). Errors are never cached: every waiter of a failed flight
// receives the error and the next Do retries the computation.
//
// compute runs without the cache lock held, so it may itself use the cache
// (under different keys).
func (c *Cache) Do(key string, compute func() (any, error)) (v any, hit bool, err error) {
	return c.DoCodec(key, nil, compute)
}

// DoCodec is Do with second-tier access: on a first-tier miss, and when
// both a tier (SetTier) and a codec are present, the tier is consulted —
// inside the same singleflight, so concurrent callers share one disk read
// and decode — and a decoded value is promoted into the first tier and
// returned as a hit. A tier value that fails to decode is reported to the
// tier (MarkCorrupt) and falls back to compute. A computed value is
// encoded and written behind to the tier. Tier traffic changes wall time
// and counters, never values: the codec round-trips canonically, and any
// mismatch degrades to the computation the cold cache would have run.
func (c *Cache) DoCodec(key string, codec Codec, compute func() (any, error)) (v any, hit bool, err error) {
	if c == nil {
		v, err = compute()
		return v, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.oHits.Add(1)
		c.mu.Unlock()
		return el.Value.(*entry).value, true, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.waits++
		c.hits++
		c.oWaits.Add(1)
		c.oHits.Add(1)
		c.mu.Unlock()
		<-fl.done
		return fl.value, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	tier := c.tier
	c.mu.Unlock()

	promoted := false
	if tier != nil && codec != nil {
		if b, ok := tier.Get(key); ok {
			if val, derr := codec.Decode(b); derr == nil {
				fl.value = val
				promoted = true
			} else {
				// Undecodable payload: invalidate and recompute. The
				// recompute's Put below heals the entry.
				tier.MarkCorrupt(key)
			}
		}
	}
	if !promoted {
		fl.value, fl.err = compute()
	}
	close(fl.done)

	c.mu.Lock()
	delete(c.flights, key)
	switch {
	case promoted:
		c.hits++
		c.promotions++
		c.oHits.Add(1)
		c.oPromote.Add(1)
		c.insert(key, fl.value)
	case fl.err == nil:
		c.misses++
		c.oMisses.Add(1)
		c.insert(key, fl.value)
	default:
		c.misses++
		c.oMisses.Add(1)
	}
	c.mu.Unlock()
	if !promoted && fl.err == nil && tier != nil && codec != nil {
		if b, eerr := codec.Encode(fl.value); eerr == nil {
			tier.Put(key, b)
		}
	}
	return fl.value, promoted, fl.err
}

// Get returns the value cached under key, if any.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.oHits.Add(1)
		return el.Value.(*entry).value, true
	}
	c.misses++
	c.oMisses.Add(1)
	return nil, false
}

// Put stores value under key, replacing any existing entry.
func (c *Cache) Put(key string, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, value)
}

// insert adds or refreshes an entry and evicts beyond capacity. Caller
// holds c.mu.
func (c *Cache) insert(key string, value any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, value: value})
	c.evictTo(c.cap)
}

// Stats is a point-in-time snapshot of the cache counters. With more than
// one worker the counts depend on scheduling order; cached values never do.
type Stats struct {
	// Hits counts Do/Get calls served from a completed entry or by waiting
	// on an in-flight computation of the same key.
	Hits uint64
	// Misses counts calls that had to run the computation.
	Misses uint64
	// Waits counts the subset of Hits that blocked on an in-flight
	// computation instead of reading a completed entry.
	Waits uint64
	// Promotions counts the subset of Hits served by decoding a value from
	// the second tier (the persistent artifact store) into the first. With
	// two tiers, Hits - Promotions - Waits is the pure in-memory hit
	// count, so -cachestats can report the tier split unambiguously.
	Promotions uint64
	// Evictions counts completed entries dropped by the first tier's LRU
	// bound. Eviction never touches the second tier (it is append-only),
	// so an evicted entry can come back later as a promotion.
	Evictions uint64
	// Entries is the current number of completed first-tier entries.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters. A nil cache reports zeroes.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Waits:      c.waits,
		Promotions: c.promotions,
		Evictions:  c.evictions,
		Entries:    c.ll.Len(),
	}
}

// Key builds canonical cache keys with minimal allocation. Components are
// appended with unambiguous separators so distinct component sequences can
// never collide ("ab"+"c" vs "a"+"bc"). The zero value is ready to use.
type Key struct {
	b []byte
}

// NewKey returns a key builder seeded with a kind tag (e.g. "partition").
func NewKey(kind string) *Key {
	k := &Key{b: make([]byte, 0, 64)}
	return k.Str(kind)
}

// Str appends a length-delimited string component.
func (k *Key) Str(s string) *Key {
	k.b = strconv.AppendInt(k.b, int64(len(s)), 10)
	k.b = append(k.b, ':')
	k.b = append(k.b, s...)
	k.b = append(k.b, '|')
	return k
}

// Int appends an integer component.
func (k *Key) Int(v int64) *Key {
	k.b = strconv.AppendInt(k.b, v, 10)
	k.b = append(k.b, '|')
	return k
}

// Ints appends a slice of integers as one component.
func (k *Key) Ints(vs []int) *Key {
	k.b = strconv.AppendInt(k.b, int64(len(vs)), 10)
	k.b = append(k.b, '[')
	for _, v := range vs {
		k.b = strconv.AppendInt(k.b, int64(v), 10)
		k.b = append(k.b, ',')
	}
	k.b = append(k.b, ']', '|')
	return k
}

// Proj appends the projection of vs onto the index set idx as one
// component, byte-identical to Ints of the materialized projection —
// Proj(vs, idx) and Ints(proj) where proj[i] = vs[idx[i]] build the same
// key. Sweep-style callers project a full data map onto a function's
// touched-object set per evaluation; Proj skips the intermediate slice.
func (k *Key) Proj(vs []int, idx []int) *Key {
	k.b = strconv.AppendInt(k.b, int64(len(idx)), 10)
	k.b = append(k.b, '[')
	for _, i := range idx {
		k.b = strconv.AppendInt(k.b, int64(vs[i]), 10)
		k.b = append(k.b, ',')
	}
	k.b = append(k.b, ']', '|')
	return k
}

// Bytes appends raw bytes as one length-delimited component (used for
// dense encodings like one-byte-per-op assignments).
func (k *Key) Bytes(bs []byte) *Key {
	k.b = strconv.AppendInt(k.b, int64(len(bs)), 10)
	k.b = append(k.b, ':')
	k.b = append(k.b, bs...)
	k.b = append(k.b, '|')
	return k
}

// Bool appends a boolean component.
func (k *Key) Bool(v bool) *Key {
	if v {
		k.b = append(k.b, '1', '|')
	} else {
		k.b = append(k.b, '0', '|')
	}
	return k
}

// Float appends a float component by exact bit pattern (no rounding, so
// distinct tolerances always get distinct keys).
func (k *Key) Float(v float64) *Key {
	k.b = strconv.AppendUint(k.b, math.Float64bits(v), 16)
	k.b = append(k.b, '|')
	return k
}

// String finalizes the key.
func (k *Key) String() string { return string(k.b) }
