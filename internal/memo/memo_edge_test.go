package memo

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"mcpart/internal/obs"
)

// TestEvictionOrderTable drives the LRU through Do/Get/Put sequences and
// pins exactly which keys survive, in the edge configurations the larger
// pipeline never exercises: capacity 0 (the DefaultCapacity sentinel),
// capacity 1 (every insert of a new key evicts), and recency refreshes
// through Do hits rather than Get.
func TestEvictionOrderTable(t *testing.T) {
	type step struct {
		op  string // "do", "get", "put"
		key string
	}
	cases := []struct {
		name      string
		capacity  int
		steps     []step
		want      []string // surviving keys, sorted
		evictions uint64
	}{
		{
			name:     "cap 0 selects DefaultCapacity and never evicts here",
			capacity: 0,
			steps:    []step{{"do", "a"}, {"do", "b"}, {"do", "c"}, {"do", "d"}},
			want:     []string{"a", "b", "c", "d"},
		},
		{
			name:      "cap 1 keeps only the newest key",
			capacity:  1,
			steps:     []step{{"do", "a"}, {"do", "b"}, {"do", "c"}},
			want:      []string{"c"},
			evictions: 2,
		},
		{
			name:     "cap 1 repeated hits on one key never evict",
			capacity: 1,
			steps:    []step{{"do", "a"}, {"do", "a"}, {"do", "a"}, {"get", "a"}},
			want:     []string{"a"},
		},
		{
			name:      "cap 2 without refresh evicts insertion order",
			capacity:  2,
			steps:     []step{{"do", "a"}, {"do", "b"}, {"do", "c"}},
			want:      []string{"b", "c"},
			evictions: 1,
		},
		{
			name:      "cap 2 Do hit refreshes recency so the other key is evicted",
			capacity:  2,
			steps:     []step{{"do", "a"}, {"do", "b"}, {"do", "a"}, {"do", "c"}},
			want:      []string{"a", "c"},
			evictions: 1,
		},
		{
			name:      "cap 2 Get refreshes recency like a Do hit",
			capacity:  2,
			steps:     []step{{"do", "a"}, {"do", "b"}, {"get", "a"}, {"put", "c"}},
			want:      []string{"a", "c"},
			evictions: 1,
		},
		{
			name:     "put replacing an existing key refreshes without evicting",
			capacity: 2,
			steps:    []step{{"do", "a"}, {"do", "b"}, {"put", "a"}, {"put", "b"}},
			want:     []string{"a", "b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.capacity)
			for _, s := range tc.steps {
				switch s.op {
				case "do":
					if _, _, err := c.Do(s.key, func() (any, error) { return s.key, nil }); err != nil {
						t.Fatalf("Do(%s): %v", s.key, err)
					}
				case "get":
					c.Get(s.key)
				case "put":
					c.Put(s.key, s.key)
				}
			}
			var got []string
			c.mu.Lock()
			for k := range c.entries {
				got = append(got, k)
			}
			c.mu.Unlock()
			sort.Strings(got)
			if len(got) != len(tc.want) {
				t.Fatalf("surviving keys = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("surviving keys = %v, want %v", got, tc.want)
				}
			}
			if s := c.Stats(); s.Evictions != tc.evictions {
				t.Errorf("evictions = %d, want %d (stats %+v)", s.Evictions, tc.evictions, s)
			}
		})
	}
}

// TestSingleflightWaitsThenEvictionOrder pins how in-flight deduplication
// interacts with the LRU: waiters on a flight count as hits+waits but the
// entry's recency is set once, when the flight completes and inserts it —
// so under capacity pressure the hammered key is evicted by age exactly
// like a key that was computed once, no matter how many callers waited.
func TestSingleflightWaitsThenEvictionOrder(t *testing.T) {
	c := New(2)

	// Hammer "a" with one blocked computation and several waiters.
	const waiters = 4
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do("a", func() (any, error) {
			close(started)
			<-release
			return "va", nil
		})
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do("a", func() (any, error) {
				t.Error("waiter recomputed an in-flight key")
				return nil, nil
			})
			if err != nil || !hit || v != "va" {
				t.Errorf("waiter Do = (%v, %v, %v), want (va, true, nil)", v, hit, err)
			}
		}()
	}
	// Waits is bumped before a waiter blocks on the flight, so polling it
	// guarantees every waiter really is parked on the in-flight computation
	// (not hitting the completed entry after the fact).
	for c.Stats().Waits != uint64(waiters) {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	s := c.Stats()
	if s.Misses != 1 || s.Waits != uint64(waiters) || s.Hits != uint64(waiters) {
		t.Fatalf("stats after singleflight = %+v, want 1 miss / %d waits / %d hits", s, waiters, waiters)
	}

	// "a" was inserted once despite the pile-up; fill the cache and push one
	// more key. "a" is the oldest completed entry and must be the victim.
	c.Do("b", func() (any, error) { return "vb", nil })
	c.Do("c", func() (any, error) { return "vc", nil })
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be evicted: singleflight waits do not pin an entry")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should survive")
	}

	// But completed-entry hits do refresh: hit "b", insert "d", "c" goes.
	c.Do("b", func() (any, error) { t.Error("b recomputed"); return nil, nil })
	c.Do("d", func() (any, error) { return "vd", nil })
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should be evicted after b's recency refresh")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should survive its refresh")
	}
}

// TestObserverCountersMirrorStats pins that the mirrored obs counters track
// Stats exactly from the SetObserver call on, including evictions, and stop
// after detach.
func TestObserverCountersMirrorStats(t *testing.T) {
	c := New(1)
	c.Do("pre", func() (any, error) { return 0, nil }) // before attach: unmirrored

	o := obs.New(obs.NewRegistry(), nil, nil)
	c.SetObserver(o)
	c.Do("a", func() (any, error) { return 1, nil }) // miss, evicts pre
	c.Do("a", func() (any, error) { return 1, nil }) // hit
	c.Do("b", func() (any, error) { return 2, nil }) // miss, evicts a
	c.SetObserver(nil)
	c.Do("b", func() (any, error) { return 2, nil }) // hit, after detach

	snap := o.Registry().Snapshot()
	if got := snap.Value("memo_hits"); got != 1 {
		t.Errorf("memo_hits = %d, want 1 (post-detach hit must not count)", got)
	}
	if got := snap.Value("memo_misses"); got != 2 {
		t.Errorf("memo_misses = %d, want 2", got)
	}
	if got := snap.Value("memo_evictions"); got != 2 {
		t.Errorf("memo_evictions = %d, want 2", got)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 3 || s.Evictions != 2 {
		t.Errorf("native stats = %+v, want 2 hits / 3 misses / 2 evictions", s)
	}
}
