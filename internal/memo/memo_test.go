package memo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDoComputesOnceAndHits(t *testing.T) {
	c := New(8)
	calls := 0
	compute := func() (any, error) { calls++; return 42, nil }

	v, hit, err := c.Do("k", compute)
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("first Do = (%v, %v, %v), want (42, false, nil)", v, hit, err)
	}
	v, hit, err = c.Do("k", compute)
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("second Do = (%v, %v, %v), want (42, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (any, error) { calls++; return nil, boom })
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do("k", func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry Do = (%v, %v, %v), want (7, false, nil)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
}

// TestConcurrentSingleflight hammers one key from many goroutines: the
// computation must run exactly once and every caller must observe the same
// value.
func TestConcurrentSingleflight(t *testing.T) {
	c := New(8)
	var mu sync.Mutex
	calls := 0
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (any, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(started)
		<-release
		return "v", nil
	}

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", compute)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", calls)
	}
	for i, v := range results {
		if v != "v" {
			t.Fatalf("goroutine %d got %v, want v", i, v)
		}
	}
}

// TestConcurrentDistinctKeys checks the cache stays consistent when many
// goroutines fill distinct keys (run with -race).
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%8)
			v, _, err := c.Do(key, func() (any, error) { return i % 8, nil })
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if v.(int) != i%8 {
				t.Errorf("key %s -> %v, want %d", key, v, i%8)
			}
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries != 8 {
		t.Fatalf("entries = %d, want 8", s.Entries)
	}
}

func TestNilCacheIsPassthrough(t *testing.T) {
	var c *Cache
	calls := 0
	v, hit, err := c.Do("k", func() (any, error) { calls++; return 1, nil })
	if err != nil || hit || v.(int) != 1 {
		t.Fatalf("nil Do = (%v, %v, %v)", v, hit, err)
	}
	v, hit, err = c.Do("k", func() (any, error) { calls++; return 2, nil })
	if err != nil || hit || v.(int) != 2 {
		t.Fatalf("nil Do (2nd) = (%v, %v, %v)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("nil cache must always recompute; got %d calls", calls)
	}
	c.Put("k", 3)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must never hit")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v, want zero", s)
	}
}

func TestNestedDoDifferentKeys(t *testing.T) {
	c := New(8)
	v, _, err := c.Do("outer", func() (any, error) {
		inner, _, err := c.Do("inner", func() (any, error) { return 10, nil })
		if err != nil {
			return nil, err
		}
		return inner.(int) + 1, nil
	})
	if err != nil || v.(int) != 11 {
		t.Fatalf("nested Do = (%v, %v)", v, err)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if c.cap != DefaultCapacity {
		t.Fatalf("New(0) capacity = %d, want DefaultCapacity %d", c.cap, DefaultCapacity)
	}
	if c := New(-5); c.cap != DefaultCapacity {
		t.Fatalf("New(-5) capacity = %d, want DefaultCapacity", c.cap)
	}
}

// TestKeyUnambiguous pins that component boundaries cannot collide: the
// same characters split differently must produce different keys.
func TestKeyUnambiguous(t *testing.T) {
	a := NewKey("t").Str("ab").Str("c").String()
	b := NewKey("t").Str("a").Str("bc").String()
	if a == b {
		t.Fatalf("ambiguous keys: %q == %q", a, b)
	}
	c := NewKey("t").Ints([]int{1, 23}).String()
	d := NewKey("t").Ints([]int{12, 3}).String()
	if c == d {
		t.Fatalf("ambiguous int keys: %q == %q", c, d)
	}
	e := NewKey("t").Int(1).Int(2).String()
	f := NewKey("t").Int(12).String()
	if e == f {
		t.Fatalf("ambiguous int concat: %q == %q", e, f)
	}
	if NewKey("t").Float(0.1).String() == NewKey("t").Float(0.10000000000000002).String() {
		t.Fatal("distinct floats must get distinct keys")
	}
	if NewKey("t").Bool(true).String() == NewKey("t").Bool(false).String() {
		t.Fatal("bools must differ")
	}
	if NewKey("t").Bytes([]byte{1, 2}).String() == NewKey("t").Bytes([]byte{1}).String() {
		t.Fatal("byte components must differ")
	}
}

func TestStatsHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate = %v, want 0", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", r)
	}
}
