// Package defaults pins the repository-wide convention for option knobs:
// the zero value of every Options struct selects the documented defaults,
// and every numeric knob treats a non-positive value as "use the default".
//
// That single sentinel rule is what lets call sites write Options{} (or
// set just one field) without consulting each package's defaults, and it
// is why no knob in this repository has a meaningful zero or negative
// setting — a knob that needed one would need an explicit pointer or
// *Set bool instead.
//
// Every accessor of the form
//
//	func (o Options) knob() T { return defaults.T(o.Knob, d) }
//
// routes through this package so the convention lives in exactly one
// place. parallel.Workers applies the same rule to worker counts (-j
// flags and Options.Workers fields: non-positive means GOMAXPROCS).
package defaults

// DefaultMaxObjects is the exhaustive mapping sweep's object-count cap:
// the sweep materializes 2^n points, so every entry point (eval.Exhaustive
// and the gdpexplore -maxobjects flag) refuses programs with more objects
// than this unless the caller raises the cap explicitly.
const DefaultMaxObjects = 14

// DefaultBestMaxObjects is the branch-and-bound best-mapping search's
// object-count cap. BestMapping visits only the subtrees its lower bound
// cannot prune and never materializes the 2^n point set, so its practical
// reach is well past the sweep's.
const DefaultBestMaxObjects = 24

// Int returns v, or d when v is non-positive.
func Int(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

// Int64 returns v, or d when v is non-positive.
func Int64(v, d int64) int64 {
	if v <= 0 {
		return d
	}
	return v
}

// Float returns v, or d when v is non-positive.
func Float(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

// Duration returns v, or d when v is non-positive.
func Duration[T ~int64](v, d T) T {
	if v <= 0 {
		return d
	}
	return v
}
