package defaults

import "testing"

func TestInt(t *testing.T) {
	for _, tc := range []struct{ v, d, want int }{
		{0, 4, 4},
		{-1, 4, 4},
		{1, 4, 1},
		{7, 4, 7},
	} {
		if got := Int(tc.v, tc.d); got != tc.want {
			t.Errorf("Int(%d, %d) = %d, want %d", tc.v, tc.d, got, tc.want)
		}
	}
}

func TestInt64(t *testing.T) {
	for _, tc := range []struct{ v, d, want int64 }{
		{0, 10_000_000, 10_000_000},
		{-1, 10_000_000, 10_000_000},
		{1, 10_000_000, 1},
		{500, 4, 500},
	} {
		if got := Int64(tc.v, tc.d); got != tc.want {
			t.Errorf("Int64(%d, %d) = %d, want %d", tc.v, tc.d, got, tc.want)
		}
	}
}

// TestObjectCaps pins the shared sweep/search object-count defaults that
// eval and cmd/gdpexplore route through this package: changing either is
// a user-visible behavior change and must be deliberate.
func TestObjectCaps(t *testing.T) {
	if DefaultMaxObjects != 14 {
		t.Errorf("DefaultMaxObjects = %d, want 14", DefaultMaxObjects)
	}
	if DefaultBestMaxObjects != 24 {
		t.Errorf("DefaultBestMaxObjects = %d, want 24", DefaultBestMaxObjects)
	}
	if DefaultBestMaxObjects <= DefaultMaxObjects {
		t.Error("the branch-and-bound cap must exceed the sweep cap")
	}
}

func TestFloat(t *testing.T) {
	for _, tc := range []struct{ v, d, want float64 }{
		{0, 0.4, 0.4},
		{-0.5, 0.4, 0.4},
		{0.1, 0.4, 0.1},
		{2, 0.4, 2},
	} {
		if got := Float(tc.v, tc.d); got != tc.want {
			t.Errorf("Float(%v, %v) = %v, want %v", tc.v, tc.d, got, tc.want)
		}
	}
}
