package partition

import (
	"context"
	"slices"
	"sync"

	"mcpart/internal/obs"
	"mcpart/internal/parallel"
)

// The fast partitioner path: the same multilevel structure as the legacy
// engine (heavy-edge-matching coarsening, multi-start greedy growing,
// move-based refinement at every level), rebuilt around three mechanisms:
//
//   - a CSR graph per level (csr.go) so every phase iterates flat arrays;
//   - Fiduccia–Mattheyses refinement: per-node gains computed once per
//     level and maintained incrementally on each move, organized in gain
//     buckets (doubly-linked lists indexed by gain with a max-gain cursor)
//     so selecting the best candidate and re-ranking its neighbors is O(1)
//     amortized instead of a full re-sort per pass;
//   - heap-based region growing for the initial bisection, replacing the
//     O(V·E) frontier rescans, with the same deterministic seed-spread
//     scheme, plus parallel multi-start at the coarsest level.
//
// Classical FM indexes buckets with a dense array because gains are small
// integers; here edge weights are profile-scaled 64-bit values, so the
// bucket structure is a lazy max-heap of (gain, node) entries over flat
// arrays: removal and relinking just flip a membership bit and push a
// fresh entry, and popMax discards entries whose recorded gain no longer
// matches the node's current bucket key. Ties between equal gains always
// resolve to the lowest node index, which keeps every pass deterministic.

// fmTries is the fast path's multi-start width at the coarsest level. The
// legacy engine uses 4 tries; FM tries are cheap enough to quadruple the
// starts, and with parallel multi-start the extra tries cost little wall
// time.
const fmTries = 16

// fmTrajectories is how many distinct coarsest-level candidates survive
// multi-start and are carried independently through the entire
// uncoarsening (projection + FM refinement per level). A single carried
// candidate can land in a locally-optimal basin a sibling escapes; the
// finest-level winner is chosen by (balance violation, cut, candidate
// index). The trajectories are independent, so they fan out across
// Options.Workers.
const fmTrajectories = 4

// parallelTryMin is the coarsest-graph size below which multi-start runs
// serially: normally coarsening reaches Options.CoarseTarget (~24 nodes)
// and goroutine fan-out would cost more than the tries themselves. Only
// when coarsening stalls early — dense graphs, many fixed nodes — is the
// coarsest graph big enough for the fan-out to pay. (Trajectory fan-out is
// gated on the finest graph instead — see bisectFast.)
const parallelTryMin = 128

// trajectoryCap is the level size above which only the single best
// candidate keeps climbing. Multi-trajectory carrying pays off on the
// small and mid levels, where distinct coarse optima still lead to
// different basins; past a few thousand nodes the candidates have
// converged and refining all of them just multiplies the cost of the most
// expensive levels.
const trajectoryCap = 512

// boundaryMin is the level size above which FM passes seed the buckets
// with boundary nodes only (interior nodes join lazily when a neighbor
// moves). Below it every free node is bucketed — exhaustive FM on the
// small, quality-critical levels costs nothing.
const boundaryMin = 32

// maxRequeue bounds how many times a balance-deferred node re-enters the
// buckets within one FM pass. Every applied move re-buckets the nodes
// parked on its destination part, and without a cap a near-balanced big
// graph turns that into a quadratic churn (half the nodes deferred, each
// apply re-queueing all of them). A node that has been re-bucketed this
// many times sits out the rest of the pass.
const maxRequeue = 4

// scratchPool recycles fmScratch working sets across Bisect/KWay calls.
// The evaluation pipeline partitions thousands of small region graphs per
// run, and reusing the grown arrays keeps those calls allocation-free.
// Every table is (re)initialized by its user, so a pooled scratch carries
// capacity, never state.
var scratchPool = sync.Pool{New: func() any { return new(fmScratch) }}

// growTo returns s resized to n, preserving nothing: callers initialize.
func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// fmScratch is the fast path's reusable working memory: one per Bisect
// call (or per parallel multi-start try), never shared across goroutines.
type fmScratch struct {
	// coarsening tables
	match    []int32
	order    []int32
	incident []int64
	mark     []int32
	pos      []int32
	sortKeys []uint64
	maxW     []int64
	// refinement tables
	gain     []int64
	pw       []int64
	limit    []int64
	bk       buckets
	moves    []int32    // this pass's tentative move sequence, for rollback
	deferred [2][]int32 // balance-blocked nodes parked per part
	requeue  []uint8    // per-pass deferred re-bucket counts
	locked   []bool     // popped this pass; ineligible for lazy re-entry
	ext      []int32    // per-node count of neighbors in the opposite part
	// initial-growth tables
	inOne []bool
	conn  []int64
	grow  []heapEnt
	// recycled multilevel buffers: coarse CSRs and fine-to-coarse maps
	// built during a bisectFast call. Nothing built from these escapes the
	// call (the winning partition is copied out), so the next call resets
	// the cursors and overwrites in place.
	csrs     []*CSR
	csrUsed  int
	cmaps    [][]int32
	cmapUsed int
	// observability tallies: accepted FM moves (kept prefix + rebalance
	// applies) and rolled-back tentative moves, accumulated by
	// refineFMPasses and flushed once per bisection when Options.Obs is
	// set. Plain ints on the scratch keep the nil-observer hot path free
	// of any observability cost.
	tMoves, tRollbacks int64
}

// resetTally clears the observability tallies; called when a scratch is
// (re)acquired for a bisection so pooled state never leaks across calls.
func (fs *fmScratch) resetTally() { fs.tMoves, fs.tRollbacks = 0, 0 }

// flushTally publishes the accumulated tallies (fs plus any extra
// trajectory scratches) and the coarsening depth to o. No-op when o is
// nil.
func flushTally(o *obs.Observer, fs *fmScratch, extra []*fmScratch, coarsenLevels int) {
	if o == nil {
		return
	}
	mv, rb := fs.tMoves, fs.tRollbacks
	for _, s := range extra {
		if s != nil {
			mv += s.tMoves
			rb += s.tRollbacks
		}
	}
	o.Counter("fm_moves").Add(mv)
	o.Counter("fm_rollbacks").Add(rb)
	o.Counter("fm_bisections").Add(1)
	o.Histogram("fm_coarsen_levels").Observe(int64(coarsenLevels))
}

// getCSR hands out a recycled coarse-graph shell (arrays keep capacity).
func (fs *fmScratch) getCSR() *CSR {
	if fs.csrUsed < len(fs.csrs) {
		c := fs.csrs[fs.csrUsed]
		fs.csrUsed++
		return c
	}
	c := new(CSR)
	fs.csrs = append(fs.csrs, c)
	fs.csrUsed++
	return c
}

// getCmap hands out a recycled fine-to-coarse map of length n.
func (fs *fmScratch) getCmap(n int) []int32 {
	if fs.cmapUsed < len(fs.cmaps) {
		m := growTo(fs.cmaps[fs.cmapUsed], n)
		fs.cmaps[fs.cmapUsed] = m
		fs.cmapUsed++
		return m
	}
	m := make([]int32, n)
	fs.cmaps = append(fs.cmaps, m)
	fs.cmapUsed++
	return m
}

// heapEnt is one lazy max-heap entry: node u was keyed by value c when
// pushed. Entries whose key is out of date are skipped on pop.
type heapEnt struct {
	c int64
	u int32
}

func entLess(a, b heapEnt) bool {
	if a.c != b.c {
		return a.c > b.c
	}
	return a.u < b.u
}

// pushEnt appends e and sifts it up; popEnt removes the root. The heap is
// 4-ary: pops dominate (every stale lazy entry costs one), and halving the
// sift depth beats the extra per-level comparisons on these sizes.
func pushEnt(h []heapEnt, e heapEnt) []heapEnt {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popEnt(h []heapEnt) []heapEnt {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDown(h, 0)
	return h
}

func siftDown(h []heapEnt, i int) {
	n := len(h)
	for {
		m := i
		c := 4*i + 1
		last := c + 4
		if last > n {
			last = n
		}
		for ; c < last; c++ {
			if entLess(h[c], h[m]) {
				m = c
			}
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// scanSelectMax is the graph size at or below which the gain buckets use
// a linear-scan backend instead of the lazy heap. Selecting the best live
// node by scanning a flat int64 gain array beats heap maintenance up to a
// few hundred nodes, and the paper's region graphs — the fast path's
// hottest callers — live entirely in that range. Both backends select the
// identical node (max gain, lowest index), so results are bit-identical.
const scanSelectMax = 128

// buckets is the FM gain-bucket structure, organized as a lazy max-heap
// of (gain, node) entries over flat arrays. insert records the node's
// current bucket key and pushes an entry; remove just clears the
// membership bit; relinking is a remove plus an insert. popMax peeks at
// the best live entry, discarding entries whose node left its bucket or
// changed key since the push. Equal gains resolve to the lowest node
// index, so selection order is deterministic.
//
// At or below scanSelectMax nodes the heap is bypassed entirely: insert
// and remove only toggle the membership bit, and popMax scans the gain
// array (wired in reset) for the best live node. The selection rule is
// the same, only the mechanism changes.
type buckets struct {
	h    []heapEnt
	key  []int64 // node's bucket key as of its latest insert
	in   []bool  // node currently belongs to a bucket
	scan bool    // linear-scan backend (tiny graphs)
	gain []int64 // current gains, read directly by the scan backend
}

func (b *buckets) reset(n int, gain []int64) {
	b.key = growTo(b.key, n)
	b.in = growTo(b.in, n)
	clear(b.in)
	b.h = b.h[:0]
	b.scan = n <= scanSelectMax
	b.gain = gain
}

// insert places u in gain bucket g. Callers keep the invariant that a
// node's bucket key equals its current gain.
func (b *buckets) insert(u int, g int64) {
	b.in[u] = true
	if b.scan {
		return
	}
	b.key[u] = g
	b.h = pushEnt(b.h, heapEnt{g, int32(u)})
}

// append places u in gain bucket g without restoring heap order; callers
// must heapify() before the next popMax. Used for the O(n) initial fill.
func (b *buckets) append(u int, g int64) {
	b.in[u] = true
	if b.scan {
		return
	}
	b.key[u] = g
	b.h = append(b.h, heapEnt{g, int32(u)})
}

func (b *buckets) heapify() {
	for i := (len(b.h) - 2) / 4; i >= 0; i-- {
		siftDown(b.h, i)
	}
}

// remove takes u out of gain bucket g (its current gain). No-op when u is
// not in a bucket; its stale heap entries are discarded by later popMax
// calls.
func (b *buckets) remove(u int, g int64) {
	_ = g
	b.in[u] = false
}

// popMax returns the node of the highest live bucket entry (without
// removing it), or -1 when every bucket is empty.
func (b *buckets) popMax() int {
	if b.scan {
		best, bestG := -1, int64(0)
		for u, live := range b.in {
			if live && (best == -1 || b.gain[u] > bestG) {
				best, bestG = u, b.gain[u]
			}
		}
		return best
	}
	for len(b.h) > 0 {
		e := b.h[0]
		if b.in[e.u] && b.key[e.u] == e.c {
			return int(e.u)
		}
		b.h = popEnt(b.h)
	}
	return -1
}

// lvl is one step of the fast path's multilevel hierarchy.
type lvl struct {
	c    *CSR
	cmap []int32 // this level's node -> next (coarser) level's node
}

// exhaustiveMax is the node count at or below which the fast path scores
// every assignment instead of running the multilevel engine. The region
// graphs the evaluation pipeline partitions are mostly this small, and at
// these sizes 2^n scored masks cost less than a single multi-start — and
// return the true optimum, so the result can never be worse than any
// heuristic's.
const exhaustiveMax = 10

// bisectTiny enumerates all 2^n bisections of g (bit u of the mask is node
// u's part), skips masks that contradict fixed assignments, and returns
// the best by (balance violation, cut weight, mask). Ascending mask order
// makes the tiebreak — and the whole function — deterministic.
func bisectTiny(g *Graph, opts Options) []int {
	n := g.Len()
	total := g.TotalW()
	dims := g.NumW
	var limit [2][]int64
	for p := 0; p < 2; p++ {
		limit[p] = make([]int64, dims)
		for d, t := range total {
			limit[p][d] = int64(float64(t) * opts.frac(p) * (1 + opts.tol(d)))
		}
	}
	var care, want uint32 // fixed-node bits: mask&care must equal want
	for u, f := range g.Fixed {
		if f != -1 {
			care |= 1 << u
			if f == 1 {
				want |= 1 << u
			}
		}
	}
	pw := make([]int64, dims)
	bestMask := uint32(0)
	bestViol, bestCut := int64(-1), int64(-1)
	for mask := uint32(0); mask < 1<<n; mask++ {
		if mask&care != want {
			continue
		}
		// Balance violation: overflow of part 1's weight past its limits
		// plus the complement's past part 0's.
		clear(pw)
		for u := 0; u < n; u++ {
			if mask>>u&1 == 1 {
				for d := 0; d < dims; d++ {
					pw[d] += g.W[u][d]
				}
			}
		}
		var viol int64
		for d := 0; d < dims; d++ {
			if over := pw[d] - limit[1][d]; over > 0 {
				viol += over
			}
			if over := total[d] - pw[d] - limit[0][d]; over > 0 {
				viol += over
			}
		}
		if bestViol >= 0 && viol > bestViol {
			continue
		}
		var cut int64
		for u := 0; u < n; u++ {
			for _, e := range g.Adj[u] {
				if e.To > u && mask>>u&1 != mask>>e.To&1 {
					cut += e.W
				}
			}
		}
		if bestViol < 0 || viol < bestViol || (viol == bestViol && cut < bestCut) {
			bestMask, bestViol, bestCut = mask, viol, cut
		}
	}
	part := make([]int, n)
	for u := 0; u < n; u++ {
		part[u] = int(bestMask >> u & 1)
	}
	return part
}

// bisectFast is the fast-path counterpart of bisectRec: build the CSR
// once, coarsen over flat arrays, then seed candidates from two depths of
// the hierarchy — a deep multi-start at the legacy coarsening floor
// (whose level chain matches the legacy path's exactly) and a shallow one
// at the fast floor, where the larger graph yields genuinely distinct
// starts. The merged top fmTrajectories candidates are carried
// independently back up the fine levels — each projected and FM-refined —
// and the finest-level winner is chosen by (balance violation, cut,
// candidate index). The deep extension only ever touches graphs below the
// fast floor, so its cost is negligible next to the fine levels. Node
// weights are conserved by coarsening, so one totals vector serves every
// level.
func bisectFast(g *Graph, opts Options) []int {
	if g.Len() <= exhaustiveMax {
		if opts.Obs != nil {
			opts.Obs.Counter("fm_tiny_bisections").Add(1)
		}
		return bisectTiny(g, opts)
	}
	fs := scratchPool.Get().(*fmScratch)
	defer scratchPool.Put(fs)
	fs.csrUsed, fs.cmapUsed = 0, 0
	fs.resetTally()
	c := buildCSRInto(fs.getCSR(), g)
	total := c.TotalW()
	levels := []lvl{{c: c}}
	coarsenTo := func(target int) bool {
		shrunk := false
		for levels[len(levels)-1].c.Len() > target && len(levels) < 64 {
			next, cmap, ok := coarsenCSR(fs, levels[len(levels)-1].c, total)
			if !ok {
				break
			}
			levels[len(levels)-1].cmap = cmap
			levels = append(levels, lvl{c: next})
			shrunk = true
		}
		return shrunk
	}
	coarsenTo(opts.coarseTargetFast())
	shallow := len(levels) - 1
	coarsenTo(opts.coarseTarget())
	deepest := len(levels) - 1

	// project replaces part with its projection onto the next finer level.
	project := func(fine lvl, part []int32) []int32 {
		fpart := make([]int32, fine.c.Len())
		for u := range fpart {
			fpart[u] = part[fine.cmap[u]]
		}
		return fpart
	}
	// The fast path tracks parts as []int32 — half the cache traffic of
	// []int in the random-access hot loops — and widens on return.
	widen := func(part []int32) []int {
		out := make([]int, len(part))
		for u, p := range part {
			out[u] = int(p)
		}
		return out
	}
	// Deep candidates: multi-start at the deepest level, carried up to the
	// shallow floor (all graphs here are at most the fast floor's size).
	cands := bestInitialFM(fs, levels[deepest].c, total, opts)
	for li := deepest - 1; li >= shallow; li-- {
		for i := range cands {
			cands[i] = project(levels[li], cands[i])
			refineFM(fs, levels[li].c, total, cands[i], opts)
		}
	}
	if deepest > shallow {
		// Fresh multi-start at the shallow floor; merge with the
		// deep-carried candidates and keep the best distinct ones.
		cands = append(cands, bestInitialFM(fs, levels[shallow].c, total, opts)...)
		cands = rankCandidates(levels[shallow].c, total, cands, opts)
	}
	if shallow == 0 {
		flushTally(opts.Obs, fs, nil, len(levels)-1)
		return widen(cands[0]) // finest level reached; cands[0] is the winner
	}
	// Uncoarsen level by level. Candidates refine independently at each
	// level — the levels are shared read-only, so they fan out across
	// workers when the graph is big enough for the goroutines to pay for
	// themselves — and once the next level exceeds trajectoryCap only the
	// best candidate keeps climbing.
	var scratches [fmTrajectories]*fmScratch
	scratches[0] = fs
	defer func() {
		for _, s := range scratches[1:] {
			if s != nil {
				scratchPool.Put(s)
			}
		}
	}()
	for li := shallow - 1; li >= 0; li-- {
		fine := levels[li]
		if len(cands) > 1 && fine.c.Len() > trajectoryCap {
			cands = rankCandidates(levels[li+1].c, total, cands, opts)[:1]
		}
		if len(cands) > 1 && fine.c.Len() >= parallelTryMin && parallel.Workers(opts.Workers) > 1 {
			cands, _ = parallel.Map(context.Background(), len(cands), opts.Workers,
				func(_ context.Context, i int) ([]int32, error) {
					if scratches[i] == nil {
						scratches[i] = scratchPool.Get().(*fmScratch)
						scratches[i].resetTally()
					}
					part := project(fine, cands[i])
					refineFM(scratches[i], fine.c, total, part, opts)
					return part, nil
				})
		} else {
			for i := range cands {
				cands[i] = project(fine, cands[i])
				refineFM(fs, fine.c, total, cands[i], opts)
			}
		}
	}
	out := widen(rankCandidates(c, total, cands, opts)[0])
	flushTally(opts.Obs, fs, scratches[1:], len(levels)-1)
	return out
}

// rankCandidates orders parts best-first by (balance violation, cut,
// original index) on c, drops duplicates, and caps the list at
// fmTrajectories. The original index tiebreak keeps the ordering — and
// with it the whole fast path — deterministic.
func rankCandidates(c *CSR, total []int64, parts [][]int32, opts Options) [][]int32 {
	return rankCandidatesN(c, total, parts, opts, fmTrajectories)
}

// rankCandidatesN is rankCandidates with an explicit cap on how many
// distinct candidates survive.
func rankCandidatesN(c *CSR, total []int64, parts [][]int32, opts Options, keep int) [][]int32 {
	if len(parts) <= 1 {
		return parts // nothing to rank; skip the O(E) scoring pass
	}
	type scored struct {
		idx  int
		viol int64
		cut  int64
	}
	sc := make([]scored, len(parts))
	for i, p := range parts {
		sc[i] = scored{i, csrViolation(c, total, p, opts), csrCut(c, p)}
	}
	slices.SortFunc(sc, func(a, b scored) int {
		switch {
		case a.viol != b.viol:
			if a.viol < b.viol {
				return -1
			}
			return 1
		case a.cut != b.cut:
			if a.cut < b.cut {
				return -1
			}
			return 1
		default:
			return a.idx - b.idx
		}
	})
	out := make([][]int32, 0, keep)
	for _, s := range sc {
		if len(out) == keep {
			break
		}
		dup := false
		for _, prev := range out {
			if slices.Equal(prev, parts[s.idx]) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, parts[s.idx])
		}
	}
	return out
}

// bestInitialFM runs fmTries independent grow+refine starts at the
// coarsest level and returns up to fmTrajectories distinct candidates,
// best-first by (balance violation, cut weight, try index). When the
// coarsest graph is large enough to matter the tries fan across
// opts.Workers goroutines (each with private scratch); selection is a
// deterministic reduction over the index-ordered results, so every worker
// count — including the serial path — returns bit-identical candidates.
func bestInitialFM(fs *fmScratch, c *CSR, total []int64, opts Options) [][]int32 {
	// The refinement budget is spent in a funnel: all fmTries starts are
	// grown (cheap, one heap sweep each), the raw grows are ranked and
	// only the best triageKeep distinct ones get a short triage budget —
	// two FM passes separate good starts from dead ones — and only the
	// best fmTrajectories survivors get the full refinement budget.
	// Ranking raw grows first halves the triage work for the price of one
	// O(E) scoring pass.
	const (
		triagePasses = 2
		triageKeep   = fmTries - 2
	)
	par := c.Len() >= parallelTryMin && parallel.Workers(opts.Workers) > 1
	var parts [][]int32
	if par {
		parts, _ = parallel.Map(context.Background(), fmTries, opts.Workers,
			func(_ context.Context, try int) ([]int32, error) {
				tfs := scratchPool.Get().(*fmScratch)
				defer scratchPool.Put(tfs)
				return growInitial(tfs, c, total, opts, try, fmTries), nil
			})
	} else {
		parts = make([][]int32, fmTries)
		for try := 0; try < fmTries; try++ {
			parts[try] = growInitial(fs, c, total, opts, try, fmTries)
		}
	}
	parts = rankCandidatesN(c, total, parts, opts, triageKeep)
	if par && len(parts) > 1 {
		parts, _ = parallel.Map(context.Background(), len(parts), opts.Workers,
			func(_ context.Context, i int) ([]int32, error) {
				tfs := scratchPool.Get().(*fmScratch)
				defer scratchPool.Put(tfs)
				refineFMPasses(tfs, c, total, parts[i], opts, triagePasses)
				return parts[i], nil
			})
	} else {
		for _, p := range parts {
			refineFMPasses(fs, c, total, p, opts, triagePasses)
		}
	}
	kept := rankCandidates(c, total, parts, opts)
	for _, p := range kept {
		refineFM(fs, c, total, p, opts)
	}
	return rankCandidates(c, total, kept, opts)
}

// growInitial grows one part greedily from a seed until it holds its
// target fraction of the combined normalized weight, honoring fixed nodes
// — the same policy as the legacy initialBisection, but the frontier is a
// lazy max-heap keyed by (connection weight into the growing part, node
// index) instead of an O(V·E) rescan per placed node. try selects among
// deterministic seed-spread choices; even tries grow part 1 and odd tries
// grow part 0, so the multi-start explores complementary regions even
// when the seed nodes coincide.
func growInitial(fs *fmScratch, c *CSR, total []int64, opts Options, try, tries int) []int32 {
	n := c.Len()
	part := make([]int32, n)
	dims := c.Dims
	side := 1 - try%2 // the part being grown
	other := 1 - side
	sTry, sTries := try/2, (tries+1)/2 // seed index within this side's tries
	norm := func(u int) float64 {
		s := 0.0
		for d := 0; d < dims; d++ {
			if total[d] > 0 {
				s += float64(c.W[u*dims+d]) / float64(total[d])
			}
		}
		return s
	}
	target := 0.0
	for d := range total {
		if total[d] > 0 {
			target += opts.frac(side)
		}
	}
	inOne := growTo(fs.inOne, n)
	clear(inOne)
	fs.inOne = inOne
	conn := growTo(fs.conn, n)
	clear(conn)
	fs.conn = conn
	fs.grow = fs.grow[:0]
	grown := 0.0
	add := func(u int) {
		inOne[u] = true
		grown += norm(u)
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			v := c.Adj[i]
			if inOne[v] || int(c.Fixed[v]) == other {
				continue
			}
			conn[v] += c.AdjW[i]
			fs.grow = pushEnt(fs.grow, heapEnt{conn[v], v})
		}
	}
	for u := 0; u < n; u++ {
		if int(c.Fixed[u]) == side {
			add(u)
		}
	}
	// Seed choice by sTry: 0 = the heaviest free node (hardest to place
	// later); k > 0 = the first free node counting from n*k/sTries,
	// spreading starts across the graph deterministically.
	if grown < target {
		seed := -1
		if sTry == 0 {
			bestW := -1.0
			for u := 0; u < n; u++ {
				if c.Fixed[u] == -1 && !inOne[u] && norm(u) > bestW {
					seed, bestW = u, norm(u)
				}
			}
		} else {
			for off := 0; off < n; off++ {
				u := (n*sTry/sTries + off) % n
				if c.Fixed[u] == -1 && !inOne[u] {
					seed = u
					break
				}
			}
		}
		if seed >= 0 {
			add(seed)
		}
	}
	cursor := 0
	for grown < target {
		u := -1
		for len(fs.grow) > 0 {
			e := fs.grow[0]
			if inOne[e.u] || conn[e.u] != e.c {
				fs.grow = popEnt(fs.grow) // stale: absorbed, or superseded by a heavier entry
				continue
			}
			u = int(e.u)
			fs.grow = popEnt(fs.grow)
			break
		}
		if u < 0 {
			// Empty frontier (disconnected remainder): fall back to the
			// lowest-index free node, as the legacy rescan would.
			for cursor < n && (inOne[cursor] || int(c.Fixed[cursor]) == other) {
				cursor++
			}
			if cursor == n {
				break
			}
			u = cursor
		}
		add(u)
	}
	for u := range part {
		if inOne[u] {
			part[u] = int32(side)
		} else {
			part[u] = int32(other)
		}
	}
	return part
}

// refineFM improves part in place with gain-bucket FM passes, preserving
// the legacy refine's balance semantics exactly: only moves that do not
// worsen the balance violation are applied in the hill-climb phase, and an
// over-limit part sheds best-gain weight-bearing nodes (even at negative
// gain) until balanced or stuck. Gains are computed once per level and
// maintained incrementally on each move; the hill-climb always takes the
// current best candidate from the buckets instead of walking a stale
// sorted list.
// refineFM runs the full-budget FM refinement on part.
func refineFM(fs *fmScratch, c *CSR, total []int64, part []int32, opts Options) {
	refineFMPasses(fs, c, total, part, opts, 0)
}

// refineFMPasses is refineFM with an explicit pass cap; maxP <= 0 means
// the full (size-tiered) budget.
func refineFMPasses(fs *fmScratch, c *CSR, total []int64, part []int32, opts Options, maxP int) {
	n := c.Len()
	if n == 0 {
		return
	}
	dims := c.Dims
	limit := growTo(fs.limit, 2*dims)
	fs.limit = limit
	for p := 0; p < 2; p++ {
		for d := 0; d < dims; d++ {
			limit[p*dims+d] = int64(float64(total[d]) * opts.frac(p) * (1 + opts.tol(d)))
		}
	}
	pw := growTo(fs.pw, 2*dims)
	fs.pw = pw
	clear(pw)
	for u := 0; u < n; u++ {
		for d := 0; d < dims; d++ {
			pw[int(part[u])*dims+d] += c.W[u*dims+d]
		}
	}
	gain := growTo(fs.gain, n)
	fs.gain = gain
	// ext[u] counts u's neighbors in the opposite part; u is a boundary
	// node iff ext[u] > 0. apply keeps the counts current, so boundary
	// passes never rescan the edge list.
	ext := growTo(fs.ext, n)
	fs.ext = ext
	for u := 0; u < n; u++ {
		var g int64
		var e int32
		pu := part[u]
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			if part[c.Adj[i]] == pu {
				g -= c.AdjW[i]
			} else {
				g += c.AdjW[i]
				e++
			}
		}
		gain[u] = g
		ext[u] = e
	}

	partViol := func(p int) int64 {
		var v int64
		for d := 0; d < dims; d++ {
			if over := pw[p*dims+d] - limit[p*dims+d]; over > 0 {
				v += over
			}
		}
		return v
	}
	violation := func() int64 { return partViol(0) + partViol(1) }

	over := func(x, lim int64) int64 {
		if x > lim {
			return x - lim
		}
		return 0
	}
	// moveDelta is the balance-violation change of moving u out of its
	// part, computed in O(dims) from the running part weights.
	moveDelta := func(u int) int64 {
		from := int(part[u])
		to := 1 - from
		var delta int64
		for d := 0; d < dims; d++ {
			w := c.W[u*dims+d]
			pf, lf := pw[from*dims+d], limit[from*dims+d]
			pt, lt := pw[to*dims+d], limit[to*dims+d]
			delta += over(pf-w, lf) - over(pf, lf)
			delta += over(pt+w, lt) - over(pt, lt)
		}
		return delta
	}

	bk := &fs.bk
	locked := growTo(fs.locked, n)
	fs.locked = locked
	// apply moves u to the other part, updating part weights and all
	// neighbor gains in O(deg). With the buckets live (FM pass), every
	// neighbor still awaiting its move this pass is relinked to its new
	// gain bucket; a free neighbor that was never bucketed (interior node
	// on a boundary-only pass) enters now that the move put it on the
	// boundary; locked (already-popped) neighbors only get their gain
	// value refreshed.
	apply := func(u int, bucketLive bool) {
		from := int(part[u])
		to := 1 - from
		for d := 0; d < dims; d++ {
			w := c.W[u*dims+d]
			pw[from*dims+d] -= w
			pw[to*dims+d] += w
		}
		part[u] = int32(to)
		gain[u] = -gain[u]
		deg := c.XAdj[u+1] - c.XAdj[u]
		ext[u] = deg - ext[u] // every incident edge swaps internal/external
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			v := int(c.Adj[i])
			w2 := 2 * c.AdjW[i]
			wasIn := bucketLive && bk.in[v]
			if wasIn {
				bk.remove(v, gain[v]) // unlink before the key changes
			}
			if int(part[v]) == to {
				gain[v] -= w2
				ext[v]--
			} else {
				gain[v] += w2
				ext[v]++
			}
			if wasIn {
				bk.insert(v, gain[v])
			} else if bucketLive && !locked[v] && c.Fixed[v] == -1 {
				bk.insert(v, gain[v]) // freshly on the boundary
			}
		}
	}

	moves := fs.moves[:0]
	requeue := growTo(fs.requeue, n)
	fs.requeue = requeue
	// maxDrift aborts a pass once this many tentative moves pass without a
	// new best prefix: the classic FM early exit. Small graphs (everything
	// at or below the coarsening floors) stay inside the budget, so the
	// quality-critical coarse levels still run exhaustive passes; on big
	// fine levels the pass stops probing once the climb has clearly died.
	maxDrift := 16 + n/4
	if maxDrift > 128 {
		maxDrift = 128 // big levels: probing deeper than this never pays
	}
	// Above boundaryMin only boundary nodes seed the buckets: interior
	// nodes have strictly negative gain and join lazily the moment a
	// neighbor's move puts them on the boundary, so a pass costs O(cut)
	// instead of O(n) where the partition is already mostly settled. At or
	// below boundaryMin every free node is bucketed, preserving exhaustive
	// FM on the quality-critical coarse levels.
	boundaryOnly := n > boundaryMin
	// An FM pass sweeps every eligible node with rollback, so it converges
	// in far fewer passes than the legacy positive-gain sweep. The small
	// levels (through boundaryMin) keep the full pass budget — that is
	// where multi-start quality is decided and passes are cheap; mid
	// levels get three passes and the big levels two (one productive, one
	// confirming), because each extra pass costs a full heap drain.
	passes := opts.maxPasses()
	switch {
	case n > trajectoryCap:
		passes = min(passes, 2)
	case n > boundaryMin:
		passes = min(passes, 3)
	}
	if maxP > 0 {
		passes = min(passes, maxP)
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		// FM pass: every eligible node enters the buckets at its current
		// gain and is moved tentatively at most once, best-gain-first,
		// skipping (deferring) moves that would worsen balance.
		// Negative-gain moves are taken too — the pass then rolls back to
		// the prefix with the best cumulative gain, which is how FM climbs
		// out of the local minima a positive-only sweep gets stuck in.
		bk.reset(n, gain)
		clear(locked)
		for u := 0; u < n; u++ {
			if c.Fixed[u] != -1 {
				continue
			}
			if boundaryOnly && ext[u] == 0 {
				continue
			}
			bk.append(u, gain[u])
		}
		bk.heapify()
		clear(requeue)
		fs.deferred[0] = fs.deferred[0][:0]
		fs.deferred[1] = fs.deferred[1][:0]
		moves = moves[:0]
		var cum, bestCum int64
		bestLen := 0
		for len(moves)-bestLen < maxDrift {
			u := bk.popMax()
			if u < 0 {
				break
			}
			g := gain[u]
			bk.remove(u, g)
			locked[u] = true
			if moveDelta(u) > 0 {
				// Infeasible for now: parked until the destination part
				// sheds weight (an apply into u's part re-buckets these).
				fs.deferred[part[u]] = append(fs.deferred[part[u]], int32(u))
				continue
			}
			cum += g
			apply(u, true)
			// u now sits in the destination part; deferred nodes there just
			// saw their target lighten, so they get another chance — but at
			// most maxRequeue chances each, or the churn goes quadratic.
			to := part[u]
			for _, v := range fs.deferred[to] {
				if requeue[v] < maxRequeue {
					requeue[v]++
					bk.insert(int(v), gain[v])
				}
			}
			fs.deferred[to] = fs.deferred[to][:0]
			moves = append(moves, int32(u))
			if cum > bestCum {
				bestCum, bestLen = cum, len(moves)
			}
		}
		// Roll back to the best prefix (ties keep the shortest, so the
		// outcome is deterministic). Buckets are drained here, so plain
		// applies maintain gains and part weights through the undo.
		for i := len(moves) - 1; i >= bestLen; i-- {
			apply(int(moves[i]), false)
		}
		fs.tMoves += int64(bestLen)
		fs.tRollbacks += int64(len(moves) - bestLen)
		if bestCum > 0 {
			moved = true
		}
		// Rebalance: while over limit, take the single move (any free node,
		// either direction) that most reduces total violation, preferring
		// higher cut gain among equally-reducing moves and lower index on
		// full ties (the ascending scan keeps the first). Steepest descent
		// matters on infeasible instances — shedding the best-gain node from
		// the worst part can overshoot the other side's limit and stall
		// where a lighter sibling still makes progress. Every applied move
		// strictly reduces the (integer) violation, so the loop terminates;
		// the iteration cap is a backstop only.
		for iter := 0; iter < 2*n && violation() > 0; iter++ {
			best := -1
			var bestDelta, bestGain int64
			for u := 0; u < n; u++ {
				if c.Fixed[u] != -1 {
					continue
				}
				d := moveDelta(u)
				if d >= 0 || (best != -1 && (d > bestDelta || (d == bestDelta && gain[u] <= bestGain))) {
					continue
				}
				best, bestDelta, bestGain = u, d, gain[u]
			}
			if best == -1 {
				break // no single move reduces violation further
			}
			apply(best, false)
			fs.tMoves++
			moved = true
		}
		if !moved {
			break
		}
	}
	fs.moves = moves
}

// csrCut returns the total weight of edges crossing parts.
func csrCut(c *CSR, part []int32) int64 {
	var cut int64
	for u := 0; u < c.Len(); u++ {
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			if v := int(c.Adj[i]); u < v && part[u] != part[v] {
				cut += c.AdjW[i]
			}
		}
	}
	return cut
}

// csrViolation returns the total per-dimension balance violation of part
// under opts' fractions and tolerances.
func csrViolation(c *CSR, total []int64, part []int32, opts Options) int64 {
	dims := c.Dims
	pw := make([]int64, 2*dims)
	for u := 0; u < c.Len(); u++ {
		for d := 0; d < dims; d++ {
			pw[int(part[u])*dims+d] += c.W[u*dims+d]
		}
	}
	var v int64
	for p := 0; p < 2; p++ {
		for d := 0; d < dims; d++ {
			lim := int64(float64(total[d]) * opts.frac(p) * (1 + opts.tol(d)))
			if ov := pw[p*dims+d] - lim; ov > 0 {
				v += ov
			}
		}
	}
	return v
}
