package partition

import "testing"

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.coarseTarget(); got != 24 {
		t.Errorf("zero CoarseTarget -> %d, want 24", got)
	}
	if got := zero.maxPasses(); got != 8 {
		t.Errorf("zero MaxPasses -> %d, want 8", got)
	}
	neg := Options{CoarseTarget: -1, MaxPasses: -1}
	if neg.coarseTarget() != 24 || neg.maxPasses() != 8 {
		t.Error("negative knobs must select the defaults")
	}
	set := Options{CoarseTarget: 10, MaxPasses: 3}
	if set.coarseTarget() != 10 || set.maxPasses() != 3 {
		t.Error("positive knobs must win over the defaults")
	}
}

// TestFracMalformed pins frac's fallback contract: any malformed
// Fractions slice — wrong length, non-positive sum, or a negative entry —
// silently degrades to equal shares rather than producing NaN limits or
// panicking deep inside a refinement pass.
func TestFracMalformed(t *testing.T) {
	cases := []struct {
		name string
		fr   []float64
	}{
		{"nil", nil},
		{"empty", []float64{}},
		{"short", []float64{1}},
		{"long", []float64{0.3, 0.3, 0.4}},
		{"zero-sum", []float64{0, 0}},
		{"negative-sum", []float64{-0.5, -0.5}},
		{"negative-entry", []float64{-0.2, 1.2}},
	}
	for _, c := range cases {
		o := Options{Fractions: c.fr}
		if o.frac(0) != 0.5 || o.frac(1) != 0.5 {
			t.Errorf("%s: frac = (%v, %v), want equal shares", c.name, o.frac(0), o.frac(1))
		}
	}
	// Well-formed but unnormalized fractions normalize by their sum.
	o := Options{Fractions: []float64{1, 3}}
	if o.frac(0) != 0.25 || o.frac(1) != 0.75 {
		t.Errorf("unnormalized: frac = (%v, %v), want (0.25, 0.75)", o.frac(0), o.frac(1))
	}
}

// TestTolEdgeCases pins tol's clamping and extension rules: the default
// without entries, last-entry reuse past the end, and negative clamping
// to exact balance.
func TestTolEdgeCases(t *testing.T) {
	var zero Options
	if zero.tol(0) != 0.10 || zero.tol(5) != 0.10 {
		t.Error("empty Tol must default to 0.10 in every dimension")
	}
	o := Options{Tol: []float64{0.05, 0.2}}
	if o.tol(0) != 0.05 || o.tol(1) != 0.2 {
		t.Error("explicit entries must be returned as given")
	}
	if o.tol(2) != 0.2 || o.tol(100) != 0.2 {
		t.Error("dimensions past the end must reuse the last entry")
	}
	neg := Options{Tol: []float64{-0.3}}
	if neg.tol(0) != 0 || neg.tol(3) != 0 {
		t.Error("negative tolerances must clamp to 0")
	}
}

// TestBisectMalformedOptions runs a real bisection under each malformed
// option set: the fallbacks must hold end to end (no panic, fixed nodes
// respected, a two-sided partition returned).
func TestBisectMalformedOptions(t *testing.T) {
	g := randGraph(80, 4, 2, 7, true)
	for _, opts := range []Options{
		{Fractions: []float64{0, 0}},
		{Fractions: []float64{-1, 2}, Tol: []float64{-0.5}},
		{Tol: []float64{}},
		{Fractions: []float64{1}, Tol: []float64{-1, 0.15}},
	} {
		for _, legacy := range []bool{false, true} {
			opts.Legacy = legacy
			part, err := Bisect(g, opts)
			if err != nil {
				t.Fatalf("legacy=%v: %v", legacy, err)
			}
			for u, f := range g.Fixed {
				if f != -1 && part[u] != f {
					t.Fatalf("legacy=%v: fixed node %d moved", legacy, u)
				}
			}
		}
	}
}
