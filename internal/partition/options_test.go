package partition

import "testing"

// TestOptionDefaults pins the documented defaults behind the repository's
// option convention (see internal/defaults): a zero or negative knob
// selects the default, any positive value wins.
func TestOptionDefaults(t *testing.T) {
	var zero Options
	if got := zero.coarseTarget(); got != 24 {
		t.Errorf("zero CoarseTarget -> %d, want 24", got)
	}
	if got := zero.maxPasses(); got != 8 {
		t.Errorf("zero MaxPasses -> %d, want 8", got)
	}
	neg := Options{CoarseTarget: -1, MaxPasses: -1}
	if neg.coarseTarget() != 24 || neg.maxPasses() != 8 {
		t.Error("negative knobs must select the defaults")
	}
	set := Options{CoarseTarget: 10, MaxPasses: 3}
	if set.coarseTarget() != 10 || set.maxPasses() != 3 {
		t.Error("positive knobs must win over the defaults")
	}
}
