package partition

import (
	"fmt"
	"testing"
)

// violCut scores a bisection the way bestInitial/bestInitialFM do: total
// balance violation first, cut weight second.
func violCut(g *Graph, part []int, opts Options) (int64, int64) {
	total := g.TotalW()
	pw := PartWeights(g, part, 2)
	var viol int64
	for p := 0; p < 2; p++ {
		for d, t := range total {
			limit := int64(float64(t) * opts.frac(p) * (1 + opts.tol(d)))
			if over := pw[p][d] - limit; over > 0 {
				viol += over
			}
		}
	}
	return viol, CutWeight(g, part)
}

// TestFastNoWorseThanLegacy is the quality property pinning the fast
// path's results to the legacy path's on seeded random graphs (with fixed
// nodes and multi-dimensional weights): lexicographically by (balance
// violation, cut weight), the fast path is never worse. In particular it
// never violates a tolerance the legacy path satisfies.
func TestFastNoWorseThanLegacy(t *testing.T) {
	type cfg struct {
		n, deg, dims int
		withFixed    bool
	}
	cfgs := []cfg{
		{60, 4, 1, false},
		{200, 4, 2, true},
		{300, 6, 1, true},
		{500, 5, 3, true},
	}
	for _, c := range cfgs {
		for seed := int64(0); seed < 8; seed++ {
			g := randGraph(c.n, c.deg, c.dims, seed, c.withFixed)
			opts := Options{Tol: []float64{0.15}}
			legacy, err := Bisect(g, Options{Tol: opts.Tol, Legacy: true})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Bisect(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			lv, lc := violCut(g, legacy, opts)
			fv, fc := violCut(g, fast, opts)
			if fv > lv || (fv == lv && fc > lc) {
				t.Errorf("n=%d deg=%d dims=%d seed=%d: fast (viol=%d cut=%d) worse than legacy (viol=%d cut=%d)",
					c.n, c.deg, c.dims, seed, fv, fc, lv, lc)
			}
			for u := range fast {
				if g.Fixed[u] != -1 && fast[u] != g.Fixed[u] {
					t.Fatalf("n=%d seed=%d: fast path moved fixed node %d", c.n, seed, u)
				}
			}
		}
	}
}

// TestLegacyPathStillWorks keeps the ablation path honest on the
// structured graphs the default-path tests use.
func TestLegacyPathStillWorks(t *testing.T) {
	g := twoCliques(12)
	part, err := Bisect(g, Options{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Errorf("legacy clique cut = %d, want 1", cut)
	}
	p4, err := KWay(pathGraph(16), 4, Options{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	pw := PartWeights(pathGraph(16), p4, 4)
	for p := 0; p < 4; p++ {
		if pw[p][0] < 2 || pw[p][0] > 6 {
			t.Errorf("legacy 4-way part %d weight %d", p, pw[p][0])
		}
	}
}

// TestFastDeterminism pins the fast path's determinism contract: the
// partition is identical across repeated runs and across every Workers
// value, including a configuration whose coarsest graph is large enough
// (>= parallelTryMin nodes) that the multi-start actually fans out.
func TestFastDeterminism(t *testing.T) {
	g := randGraph(2000, 5, 2, 42, true)
	for _, workers := range []int{0, 1, 8} {
		opts := Options{
			Tol:          []float64{0.15},
			CoarseTarget: 600, // keep the coarsest level above parallelTryMin
			Workers:      workers,
		}
		base, err := Bisect(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			p, err := Bisect(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for u := range base {
				if p[u] != base[u] {
					t.Fatalf("workers=%d rep=%d: nondeterministic at node %d", workers, rep, u)
				}
			}
		}
	}
	// Cross-worker equality: -j1 and -j8 must agree bit for bit.
	opts1 := Options{Tol: []float64{0.15}, CoarseTarget: 600, Workers: 1}
	opts8 := opts1
	opts8.Workers = 8
	p1, err := Bisect(g, opts1)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Bisect(g, opts8)
	if err != nil {
		t.Fatal(err)
	}
	for u := range p1 {
		if p1[u] != p8[u] {
			t.Fatalf("-j1 vs -j8 diverge at node %d", u)
		}
	}
}

// TestLegacyDeterminism gives the legacy path the same repeated-run check.
func TestLegacyDeterminism(t *testing.T) {
	g := randGraph(400, 5, 2, 11, true)
	opts := Options{Tol: []float64{0.15}, Legacy: true}
	base, err := Bisect(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		p, err := Bisect(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := range base {
			if p[u] != base[u] {
				t.Fatalf("rep %d: nondeterministic at node %d", rep, u)
			}
		}
	}
}

// TestKWayFastMatchesQuality runs the 4-way recursion on random graphs
// under both paths and checks the fast path's total cut is no worse than
// legacy's whenever both are balance-feasible.
func TestKWayFastMatchesQuality(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := randGraph(240, 5, 2, 100+seed, false)
		fast, err := KWay(g, 4, Options{Tol: []float64{0.2}})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := KWay(g, 4, Options{Tol: []float64{0.2}, Legacy: true})
		if err != nil {
			t.Fatal(err)
		}
		fc, lc := CutWeight(g, fast), CutWeight(g, legacy)
		if fc > lc {
			t.Errorf("seed %d: fast 4-way cut %d > legacy %d", seed, fc, lc)
		}
	}
}

// TestBucketsBasic exercises the gain-bucket structure directly —
// inserts, removals, relinking, and lazy cursor invalidation — under both
// backends: the linear-scan mode tiny graphs get and the lazy heap used
// above scanSelectMax. The observable drain order must be identical.
func TestBucketsBasic(t *testing.T) {
	for _, mode := range []string{"scan", "heap"} {
		t.Run(mode, func(t *testing.T) {
			n := 8
			if mode == "heap" {
				n = scanSelectMax + 8 // force the heap backend
			}
			gains := make([]int64, n)
			var b buckets
			b.reset(n, gains)
			if wantScan := mode == "scan"; b.scan != wantScan {
				t.Fatalf("scan backend = %v, want %v", b.scan, wantScan)
			}
			for u := 7; u >= 0; u-- {
				gains[u] = int64(u % 3) // gains 0,1,2 shared by several nodes
				b.insert(u, gains[u])
			}
			if got := b.popMax(); got != 2 {
				t.Fatalf("popMax = %d, want 2 (lowest index of gain 2)", got)
			}
			b.remove(2, 2)
			if got := b.popMax(); got != 5 {
				t.Fatalf("popMax after removing 2 = %d, want 5", got)
			}
			// Relink node 5 from gain 2 to gain 10.
			b.remove(5, 2)
			gains[5] = 10
			b.insert(5, 10)
			if got := b.popMax(); got != 5 {
				t.Fatalf("popMax after relink = %d, want 5", got)
			}
			b.remove(5, 10)
			gains[5] = 2
			// Drain: gain-1 nodes then gain-0 nodes, ascending within a bucket.
			var order []int
			for {
				u := b.popMax()
				if u < 0 {
					break
				}
				order = append(order, u)
				b.remove(u, gains[u])
			}
			want := []int{1, 4, 7, 0, 3, 6}
			if fmt.Sprint(order) != fmt.Sprint(want) {
				t.Fatalf("drain order %v, want %v", order, want)
			}
		})
	}
}
