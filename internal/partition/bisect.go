package partition

import (
	"fmt"
	"sort"

	"mcpart/internal/defaults"
	"mcpart/internal/obs"
)

// Options tunes the partitioner.
type Options struct {
	// Tol is the per-dimension imbalance tolerance: part weight may reach
	// (1+Tol[d]) * total[d]/2. Dimensions beyond len(Tol) use the last
	// entry; an empty slice means 0.10 everywhere.
	Tol []float64
	// CoarseTarget stops coarsening once the graph is this small
	// (default 24 nodes).
	CoarseTarget int
	// MaxPasses bounds refinement passes per level (default 8).
	MaxPasses int
	// Fractions gives each part's target share of every weight dimension
	// (default equal shares). For Bisect it must have length 2 and sum to
	// ~1; KWay splits it across the recursion.
	Fractions []float64
	// Legacy selects the original partitioner path (per-node []Edge walks,
	// full candidate re-sorts every refinement pass, O(V·E) initial growth)
	// instead of the default CSR + gain-bucket FM fast path. It exists for
	// A/B ablation and as an escape hatch, mirroring the NoMemo/NoSymPrune
	// pattern elsewhere in the tree.
	Legacy bool
	// Workers bounds the goroutine fan-out of the fast path's parallel
	// multi-start initial partitioning; 0 means runtime.GOMAXPROCS(0).
	// The result is identical for every value.
	Workers int
	// Obs, when non-nil, receives the fast path's refinement metrics
	// (fm_moves, fm_rollbacks, fm_coarsen_levels, fm_bisections). Hot
	// loops tally into scratch fields and flush once per bisection, so a
	// nil Obs costs nothing on the refinement path.
	Obs *obs.Observer
}

// frac returns part p's target share for a 2-way split. Malformed
// Fractions (wrong length, non-positive sum, or a negative entry) fall
// back to equal shares.
func (o Options) frac(p int) float64 {
	if len(o.Fractions) != 2 {
		return 0.5
	}
	sum := o.Fractions[0] + o.Fractions[1]
	if sum <= 0 || o.Fractions[0] < 0 || o.Fractions[1] < 0 {
		return 0.5
	}
	return o.Fractions[p] / sum
}

// tol returns dimension d's imbalance tolerance. Dimensions beyond
// len(Tol) reuse the last entry; negative entries clamp to 0.
func (o Options) tol(d int) float64 {
	t := 0.10
	if len(o.Tol) > 0 {
		if d >= len(o.Tol) {
			d = len(o.Tol) - 1
		}
		t = o.Tol[d]
	}
	if t < 0 {
		return 0
	}
	return t
}

func (o Options) coarseTarget() int { return defaults.Int(o.CoarseTarget, 24) }
func (o Options) maxPasses() int    { return defaults.Int(o.MaxPasses, 8) }

// coarseTargetFast is the fast path's default coarsening floor. Initial
// partitioning is cheap there (heap-based growing + bucket FM), so it
// stops coarsening four times earlier than the legacy path: a larger
// coarsest graph gives the multi-start genuinely distinct candidates to
// carry through uncoarsening instead of sixteen tries collapsing into the
// same tiny-graph optimum. An explicit CoarseTarget overrides both paths
// alike.
func (o Options) coarseTargetFast() int { return defaults.Int(o.CoarseTarget, 96) }

// bscratch holds the bisection's reusable working memory: the matching and
// candidate tables that coarsen and refine would otherwise allocate at
// every level of the multilevel hierarchy. One bscratch serves one Bisect
// call — it is never shared across goroutines, so concurrent partitioner
// invocations (the parallel evaluation fan-out) stay race-free.
type bscratch struct {
	match    []int
	order    []int
	incident []int64
	cands    []cand
	inOne    []bool
}

// ints returns s resized to n, zeroed.
func (sc *bscratch) ints(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Bisect splits g into parts 0 and 1, minimizing cut weight subject to the
// per-dimension balance tolerances and the graph's fixed assignments.
func Bisect(g *Graph, opts Options) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	for u, f := range g.Fixed {
		if f < -1 || f > 1 {
			return nil, fmt.Errorf("partition: node %d fixed to %d, want -1..1", u, f)
		}
	}
	return bisectUnchecked(g, opts), nil
}

// bisectUnchecked runs the bisection without re-validating g; KWay's
// recursion builds subgraphs that are correct by construction, so only the
// entry points validate.
func bisectUnchecked(g *Graph, opts Options) []int {
	if g.Len() == 0 {
		return nil
	}
	if opts.Legacy {
		return bisectRec(&bscratch{}, g, opts, 0)
	}
	return bisectFast(g, opts)
}

// level holds one step of the multilevel hierarchy.
type level struct {
	g     *Graph
	cmap  []int // fine node -> coarse node in next level
	finer *level
}

func bisectRec(sc *bscratch, g *Graph, opts Options, depth int) []int {
	// Coarsen.
	cur := &level{g: g}
	for cur.g.Len() > opts.coarseTarget() && depth < 64 {
		next, cmap, shrunk := coarsen(sc, cur.g)
		if !shrunk {
			break
		}
		cur = &level{g: next, cmap: cmap, finer: cur}
		// Reuse cmap position: store map on the finer level for projection.
		cur.finer.cmap = cmap
	}
	// Initial partition at the coarsest level: several greedy growings from
	// different seeds, each refined; keep the best by (balance violation,
	// cut weight) — the standard multi-start used by multilevel
	// partitioners.
	part := bestInitial(sc, cur.g, opts)
	// Uncoarsen, projecting and refining.
	for cur.finer != nil {
		fine := cur.finer
		fpart := make([]int, fine.g.Len())
		for u := range fpart {
			fpart[u] = part[fine.cmap[u]]
		}
		part = fpart
		cur = fine
		refine(sc, cur.g, part, opts)
	}
	return part
}

// coarsen performs one round of heavy-edge matching and returns the coarse
// graph, the fine-to-coarse map, and whether the graph actually shrank.
// The matching tables come from sc; the coarse graph and fine-to-coarse map
// are freshly allocated (the multilevel hierarchy retains them).
func coarsen(sc *bscratch, g *Graph) (*Graph, []int, bool) {
	n := g.Len()
	total := g.TotalW()
	// Limit merged node weight so coarse nodes stay partitionable.
	maxW := make([]int64, g.NumW)
	for d, t := range total {
		maxW[d] = t/3 + 1
	}
	sc.match = sc.ints(sc.match, n)
	match := sc.match
	for i := range match {
		match[i] = -1
	}
	// Visit nodes in descending order of incident edge weight so heavy
	// structures merge first; ties break on index for determinism.
	sc.order = sc.ints(sc.order, n)
	order := sc.order
	if cap(sc.incident) < n {
		sc.incident = make([]int64, n)
	}
	sc.incident = sc.incident[:n]
	clear(sc.incident)
	incident := sc.incident
	for u := range order {
		order[u] = u
		for _, e := range g.Adj[u] {
			incident[u] += e.W
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if incident[a] != incident[b] {
			return incident[a] > incident[b]
		}
		return a < b
	})
	matched := 0
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		best, bestW := -1, int64(-1)
		for _, e := range g.Adj[u] {
			v := e.To
			if match[v] != -1 {
				continue
			}
			if g.Fixed[u] != -1 && g.Fixed[v] != -1 && g.Fixed[u] != g.Fixed[v] {
				continue // cannot merge nodes locked to different parts
			}
			ok := true
			for d := range maxW {
				if g.W[u][d]+g.W[v][d] > maxW[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if e.W > bestW || (e.W == bestW && v < best) {
				best, bestW = v, e.W
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
			matched += 2
		} else {
			match[u] = u
		}
	}
	if matched < n/10 {
		return nil, nil, false
	}
	// Build the coarse graph.
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	cn := 0
	for u := 0; u < n; u++ {
		if cmap[u] != -1 {
			continue
		}
		cmap[u] = cn
		if match[u] != u {
			cmap[match[u]] = cn
		}
		cn++
	}
	cg := NewGraph(cn, g.NumW)
	for u := 0; u < n; u++ {
		cu := cmap[u]
		for d, w := range g.W[u] {
			cg.W[cu][d] += w
		}
		if g.Fixed[u] != -1 {
			cg.Fixed[cu] = g.Fixed[u]
		}
	}
	for u := 0; u < n; u++ {
		cu := cmap[u]
		for _, e := range g.Adj[u] {
			cv := cmap[e.To]
			if cu < cv {
				cg.Connect(cu, cv, e.W)
			}
		}
	}
	return cg, cmap, true
}

func bestInitial(sc *bscratch, g *Graph, opts Options) []int {
	total := g.TotalW()
	violationOf := func(part []int) int64 {
		pw := PartWeights(g, part, 2)
		var v int64
		for p := 0; p < 2; p++ {
			for d, t := range total {
				limit := int64(float64(t) * opts.frac(p) * (1 + opts.tol(d)))
				if over := pw[p][d] - limit; over > 0 {
					v += over
				}
			}
		}
		return v
	}
	var best []int
	var bestViol, bestCut int64
	for try := 0; try < 4; try++ {
		part := initialBisection(sc, g, opts, try)
		refine(sc, g, part, opts)
		viol, cut := violationOf(part), CutWeight(g, part)
		if best == nil || viol < bestViol || (viol == bestViol && cut < bestCut) {
			best, bestViol, bestCut = part, viol, cut
		}
	}
	return best
}

// initialBisection grows part 1 greedily from a seed until half the
// (normalized, combined) weight is collected, honoring fixed nodes. try
// selects among deterministic seed choices.
func initialBisection(sc *bscratch, g *Graph, opts Options, try int) []int {
	n := g.Len()
	part := make([]int, n)
	total := g.TotalW()
	norm := func(u int) float64 {
		s := 0.0
		for d, w := range g.W[u] {
			if total[d] > 0 {
				s += float64(w) / float64(total[d])
			}
		}
		return s
	}
	// Start from fixed assignments. Part 1 grows until it holds its
	// target fraction of the combined normalized weight.
	var grown float64
	half := 0.0
	for d := range total {
		if total[d] > 0 {
			half += opts.frac(1)
		}
	}
	if cap(sc.inOne) < n {
		sc.inOne = make([]bool, n)
	}
	sc.inOne = sc.inOne[:n]
	clear(sc.inOne)
	inOne := sc.inOne
	for u, f := range g.Fixed {
		if f == 1 {
			inOne[u] = true
			grown += norm(u)
		}
	}
	// Seed choice by try: 0 = the heaviest free node (hardest to place
	// later); k > 0 = the k-th free node counting from n*k/4, spreading
	// starts across the graph deterministically.
	if grown < half {
		seed := -1
		if try == 0 {
			bestW := -1.0
			for u := 0; u < n; u++ {
				if g.Fixed[u] == -1 && !inOne[u] && norm(u) > bestW {
					seed, bestW = u, norm(u)
				}
			}
		} else {
			for off := 0; off < n; off++ {
				u := (n*try/4 + off) % n
				if g.Fixed[u] == -1 && !inOne[u] {
					seed = u
					break
				}
			}
		}
		if seed >= 0 {
			inOne[seed] = true
			grown += norm(seed)
		}
	}
	// BFS-like growth preferring the frontier node with the heaviest
	// connection into part 1.
	for grown < half {
		best, bestGain := -1, int64(-1)
		for u := 0; u < n; u++ {
			if inOne[u] || g.Fixed[u] == 0 {
				continue
			}
			var gain int64
			for _, e := range g.Adj[u] {
				if inOne[e.To] {
					gain += e.W
				}
			}
			if gain > bestGain || (gain == bestGain && best == -1) {
				best, bestGain = u, gain
			}
		}
		if best == -1 {
			break
		}
		inOne[best] = true
		grown += norm(best)
	}
	for u := range part {
		if inOne[u] {
			part[u] = 1
		}
	}
	return part
}

// cand is one positive-gain move candidate of a refinement pass.
type cand struct {
	u int
	g int64
}

// refine runs FM-style passes moving free nodes between parts to reduce
// cut weight while keeping (or restoring) balance.
func refine(sc *bscratch, g *Graph, part []int, opts Options) {
	total := g.TotalW()
	// limit[p][d]: part p's cap on dimension d under its target fraction.
	limit := make([][]int64, 2)
	for p := 0; p < 2; p++ {
		limit[p] = make([]int64, g.NumW)
		for d, t := range total {
			limit[p][d] = int64(float64(t) * opts.frac(p) * (1 + opts.tol(d)))
		}
	}
	pw := PartWeights(g, part, 2)

	violation := func() int64 {
		var v int64
		for p := 0; p < 2; p++ {
			for d := range limit[p] {
				if over := pw[p][d] - limit[p][d]; over > 0 {
					v += over
				}
			}
		}
		return v
	}

	gain := func(u int) int64 {
		var same, other int64
		for _, e := range g.Adj[u] {
			if part[e.To] == part[u] {
				same += e.W
			} else {
				other += e.W
			}
		}
		return other - same
	}

	move := func(u int) {
		from := part[u]
		to := 1 - from
		for d, w := range g.W[u] {
			pw[from][d] -= w
			pw[to][d] += w
		}
		part[u] = to
	}

	for pass := 0; pass < opts.maxPasses(); pass++ {
		moved := false
		// Positive-gain, balance-respecting moves in descending gain order.
		cands := sc.cands[:0]
		for u := 0; u < g.Len(); u++ {
			if g.Fixed[u] != -1 {
				continue
			}
			if gu := gain(u); gu > 0 {
				cands = append(cands, cand{u, gu})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].g != cands[j].g {
				return cands[i].g > cands[j].g
			}
			return cands[i].u < cands[j].u
		})
		sc.cands = cands
		for _, c := range cands {
			if gain(c.u) <= 0 { // may have changed after earlier moves
				continue
			}
			before := violation()
			move(c.u)
			if violation() > before {
				move(c.u) // undo: would worsen balance
				continue
			}
			moved = true
		}
		// Rebalancing: while over limit, move the best-gain node out of the
		// overweight part even at negative gain.
		for violation() > 0 {
			// Find the part with the largest violation.
			from := 0
			var worst int64 = -1
			for p := 0; p < 2; p++ {
				var v int64
				for d := range limit[p] {
					if over := pw[p][d] - limit[p][d]; over > 0 {
						v += over
					}
				}
				if v > worst {
					worst, from = v, p
				}
			}
			best, bestGain := -1, int64(0)
			for u := 0; u < g.Len(); u++ {
				if part[u] != from || g.Fixed[u] != -1 {
					continue
				}
				hasWeight := false
				for d := range limit[from] {
					if g.W[u][d] > 0 && pw[from][d] > limit[from][d] {
						hasWeight = true
					}
				}
				if !hasWeight {
					continue
				}
				if gu := gain(u); best == -1 || gu > bestGain {
					best, bestGain = u, gu
				}
			}
			if best == -1 {
				break // nothing movable: fixed nodes make this infeasible
			}
			before := violation()
			move(best)
			if violation() >= before {
				move(best)
				break
			}
			moved = true
		}
		if !moved {
			break
		}
	}
}

// kwayScratch holds KWay's reusable fine-to-subgraph remap table, shared
// across every level of the recursion (each level rebuilds it from zero).
type kwayScratch struct {
	back []int
}

// remap returns the remap table resized to n and zeroed. Entries hold
// subgraph index + 1, with 0 meaning "not on this side".
func (sc *kwayScratch) remap(n int) []int {
	if cap(sc.back) < n {
		sc.back = make([]int, n)
	}
	sc.back = sc.back[:n]
	clear(sc.back)
	return sc.back
}

// KWay partitions g into k parts (k a power of two) by recursive bisection.
// Fixed assignments must be in [0,k).
func KWay(g *Graph, k int, opts Options) ([]int, error) {
	if k < 1 || k&(k-1) != 0 {
		return nil, fmt.Errorf("partition: k=%d is not a power of two", k)
	}
	if k == 1 {
		return make([]int, g.Len()), nil
	}
	for u, f := range g.Fixed {
		if f < -1 || f >= k {
			return nil, fmt.Errorf("partition: node %d fixed to %d, want -1..%d", u, f, k-1)
		}
	}
	// Validate once here; the recursion's subgraphs are symmetric by
	// construction, so revalidating at every level would only repeat work.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	return kwayRec(&kwayScratch{}, g, k, opts), nil
}

func kwayRec(sc *kwayScratch, g *Graph, k int, opts Options) []int {
	if k == 1 {
		return make([]int, g.Len())
	}
	if k == 2 {
		return bisectUnchecked(g, opts)
	}
	// First split: parts < k/2 vs >= k/2, with fraction targets summed per
	// half when provided.
	topOpts := opts
	if len(opts.Fractions) == k {
		var lo, hi float64
		for p, f := range opts.Fractions {
			if p < k/2 {
				lo += f
			} else {
				hi += f
			}
		}
		topOpts.Fractions = []float64{lo, hi}
	} else {
		topOpts.Fractions = nil
	}
	// The top-level split only needs different fixed assignments; weights
	// and adjacency are read-only to the bisection, so share them.
	top := &Graph{NumW: g.NumW, W: g.W, Adj: g.Adj, Fixed: make([]int, g.Len())}
	for u, f := range g.Fixed {
		switch {
		case f == -1:
			top.Fixed[u] = -1
		case f < k/2:
			top.Fixed[u] = 0
		default:
			top.Fixed[u] = 1
		}
	}
	half := bisectUnchecked(top, topOpts)
	out := make([]int, g.Len())
	for side := 0; side < 2; side++ {
		idx := make([]int, 0, g.Len())
		back := sc.remap(g.Len())
		for u := range half {
			if half[u] == side {
				back[u] = len(idx) + 1
				idx = append(idx, u)
			}
		}
		sub := NewGraph(len(idx), g.NumW)
		for i, u := range idx {
			copy(sub.W[i], g.W[u])
			if f := g.Fixed[u]; f != -1 {
				sub.Fixed[i] = f - side*(k/2)
				if sub.Fixed[i] < 0 || sub.Fixed[i] >= k/2 {
					sub.Fixed[i] = -1 // fixed to the other side; unreachable
				}
			}
			// Neighbor lists hold unique targets (Connect merges parallel
			// edges), so append directly; symmetry of g.Adj gives each
			// surviving edge its twin when the neighbor's turn comes.
			for _, e := range g.Adj[u] {
				if j := back[e.To]; j > 0 {
					sub.Adj[i] = append(sub.Adj[i], Edge{To: j - 1, W: e.W})
				}
			}
		}
		subOpts := opts
		if len(opts.Fractions) == k {
			subOpts.Fractions = append([]float64(nil), opts.Fractions[side*(k/2):(side+1)*(k/2)]...)
		} else {
			subOpts.Fractions = nil
		}
		subPart := kwayRec(sc, sub, k/2, subOpts)
		for i, u := range idx {
			out[u] = side*(k/2) + subPart[i]
		}
	}
	return out
}
