package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph builds a path 0-1-2-...-n-1 with unit weights.
func pathGraph(n int) *Graph {
	g := NewGraph(n, 1)
	for i := 0; i < n; i++ {
		g.W[i][0] = 1
		if i+1 < n {
			g.Connect(i, i+1, 1)
		}
	}
	return g
}

// twoCliques builds two size-m cliques joined by a single light edge: the
// optimal bisection cuts exactly that edge.
func twoCliques(m int) *Graph {
	g := NewGraph(2*m, 1)
	for i := 0; i < 2*m; i++ {
		g.W[i][0] = 1
	}
	for c := 0; c < 2; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.Connect(base+i, base+j, 10)
			}
		}
	}
	g.Connect(m-1, m, 1)
	return g
}

func TestConnectMergesParallelEdges(t *testing.T) {
	g := NewGraph(2, 1)
	g.Connect(0, 1, 3)
	g.Connect(0, 1, 4)
	g.Connect(1, 1, 9) // self-edge ignored
	if len(g.Adj[0]) != 1 || g.Adj[0][0].W != 7 {
		t.Fatalf("adj[0] = %v", g.Adj[0])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBisectPath(t *testing.T) {
	g := pathGraph(20)
	part, err := Bisect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Errorf("path cut = %d, want 1 (partition %v)", cut, part)
	}
	pw := PartWeights(g, part, 2)
	if pw[0][0] < 9 || pw[0][0] > 11 {
		t.Errorf("imbalanced: %v", pw)
	}
}

func TestBisectTwoCliques(t *testing.T) {
	g := twoCliques(12)
	part, err := Bisect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Errorf("clique cut = %d, want 1", cut)
	}
	// All of clique 0 on one side.
	for i := 1; i < 12; i++ {
		if part[i] != part[0] {
			t.Fatalf("clique 0 split: %v", part[:12])
		}
	}
}

func TestBisectRespectsFixed(t *testing.T) {
	g := twoCliques(8)
	// Force the cliques onto opposite sides of what cut alone would pick:
	// fix node 0 to part 1 and node 8 to part 0.
	g.Fixed[0] = 1
	g.Fixed[8] = 0
	part, err := Bisect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != 1 || part[8] != 0 {
		t.Fatalf("fixed nodes moved: part[0]=%d part[8]=%d", part[0], part[8])
	}
	if cut := CutWeight(g, part); cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
}

func TestBisectBalancesMultiWeight(t *testing.T) {
	// Dim 0: only nodes 0 and 1 carry (equal, huge) data weight; dim 1:
	// everyone carries 1. A valid partition must separate 0 and 1.
	g := NewGraph(10, 2)
	for i := 0; i < 10; i++ {
		g.W[i][1] = 1
	}
	g.W[0][0] = 1000
	g.W[1][0] = 1000
	// Connect everything in a ring so there are edges to trade off.
	for i := 0; i < 10; i++ {
		g.Connect(i, (i+1)%10, 1)
	}
	part, err := Bisect(g, Options{Tol: []float64{0.2, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if part[0] == part[1] {
		t.Fatalf("heavy nodes on same side: %v", part)
	}
	pw := PartWeights(g, part, 2)
	if pw[0][0] != 1000 || pw[1][0] != 1000 {
		t.Fatalf("data weight imbalanced: %v", pw)
	}
}

func TestKWayFour(t *testing.T) {
	// Four cliques in a ring: 4-way should cut only the 4 ring edges.
	m := 6
	g := NewGraph(4*m, 1)
	for i := range g.W {
		g.W[i][0] = 1
	}
	for c := 0; c < 4; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.Connect(base+i, base+j, 10)
			}
		}
		g.Connect(base+m-1, (base+m)%(4*m), 1)
	}
	part, err := KWay(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each clique must land on a single part, and all four parts used.
	used := map[int]bool{}
	for c := 0; c < 4; c++ {
		p := part[c*m]
		used[p] = true
		for i := 1; i < m; i++ {
			if part[c*m+i] != p {
				t.Fatalf("clique %d split: %v", c, part[c*m:(c+1)*m])
			}
		}
	}
	if len(used) != 4 {
		t.Fatalf("only %d parts used: %v", len(used), part)
	}
}

func TestKWayRejectsNonPowerOfTwo(t *testing.T) {
	g := pathGraph(6)
	if _, err := KWay(g, 3, Options{}); err == nil {
		t.Error("KWay accepted k=3")
	}
}

func TestKWayRespectsFixed(t *testing.T) {
	g := pathGraph(16)
	g.Fixed[0] = 3
	g.Fixed[15] = 0
	part, err := KWay(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if part[0] != 3 || part[15] != 0 {
		t.Fatalf("fixed violated: part[0]=%d part[15]=%d", part[0], part[15])
	}
}

func TestBisectEmptyAndTiny(t *testing.T) {
	if p, err := Bisect(NewGraph(0, 1), Options{}); err != nil || len(p) != 0 {
		t.Errorf("empty graph: %v %v", p, err)
	}
	g := NewGraph(1, 1)
	g.W[0][0] = 5
	p, err := Bisect(g, Options{})
	if err != nil || len(p) != 1 {
		t.Errorf("single node: %v %v", p, err)
	}
}

// Property: on random graphs, Bisect returns a valid 2-partition that
// respects fixed nodes, and balance within tolerance whenever every node
// weight is 1 (always feasible).
func TestBisectQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		g := NewGraph(n, 1)
		for i := 0; i < n; i++ {
			g.W[i][0] = 1
		}
		edges := n + rng.Intn(3*n)
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			g.Connect(u, v, int64(1+rng.Intn(9)))
		}
		if rng.Intn(2) == 0 {
			g.Fixed[rng.Intn(n)] = rng.Intn(2)
		}
		part, err := Bisect(g, Options{Tol: []float64{0.3}})
		if err != nil {
			return false
		}
		for u := range part {
			if part[u] != 0 && part[u] != 1 {
				return false
			}
			if g.Fixed[u] != -1 && part[u] != g.Fixed[u] {
				return false
			}
		}
		pw := PartWeights(g, part, 2)
		limit := int64(float64(n) / 2 * 1.31)
		return pw[0][0] <= limit && pw[1][0] <= limit
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: refinement never makes the cut worse than the projected cut
// would be on a simple sanity family (two cliques of random size).
func TestBisectCliqueOptimalQuick(t *testing.T) {
	check := func(m8 uint8) bool {
		m := 4 + int(m8)%12
		g := twoCliques(m)
		part, err := Bisect(g, Options{})
		if err != nil {
			return false
		}
		return CutWeight(g, part) == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	g := twoCliques(10)
	g.Connect(3, 14, 2)
	p1, err := Bisect(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p2, err := Bisect(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for u := range p1 {
			if p1[u] != p2[u] {
				t.Fatalf("nondeterministic at node %d", u)
			}
		}
	}
}

func TestKWayFractions(t *testing.T) {
	// 16 unit nodes on a path, 4-way with shares 0.4/0.2/0.2/0.2.
	g := pathGraph(16)
	part, err := KWay(g, 4, Options{
		Tol:       []float64{0.15},
		Fractions: []float64{0.4, 0.2, 0.2, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pw := PartWeights(g, part, 4)
	if pw[0][0] < 5 || pw[0][0] > 8 {
		t.Errorf("part 0 got %d nodes, want ~6-7 of 16", pw[0][0])
	}
	for p := 1; p < 4; p++ {
		if pw[p][0] < 2 || pw[p][0] > 5 {
			t.Errorf("part %d got %d nodes, want ~3", p, pw[p][0])
		}
	}
}
