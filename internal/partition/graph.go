// Package partition implements a multilevel multi-constraint graph
// partitioner in the style of METIS (Karypis & Kumar), which the paper uses
// to divide the coarsened program-level data-flow graph across cluster
// memories. It supports:
//
//   - multiple node weights (multi-constraint balancing, e.g. data bytes
//     and operation counts simultaneously);
//   - fixed vertices (pre-assigned to a part and never moved), used to lock
//     memory operations to their object's home cluster and to anchor
//     region live-in values;
//   - heavy-edge-matching coarsening, greedy graph-growing initial
//     partitioning, and Fiduccia–Mattheyses refinement at every
//     uncoarsening level;
//   - k-way partitioning by recursive bisection (k a power of two).
//
// Two implementations share these semantics: the default fast path (CSR
// arrays, gain-bucket FM, heap-based growing, parallel multi-start — see
// csr.go and fm.go) and the original path behind Options.Legacy. Both are
// fully deterministic — ties break on fixed rules (node index, or
// insertion order within a gain bucket), multi-start winners are chosen by
// (balance violation, cut, try index), and results are identical for every
// Options.Workers value — but the two paths may pick different
// equal-quality partitions from each other.
package partition

import "fmt"

// Edge is one endpoint of an undirected weighted edge.
type Edge struct {
	To int
	W  int64
}

// Graph is an undirected graph with vector node weights.
type Graph struct {
	NumW  int       // weight dimensions per node
	W     [][]int64 // [node][dim]
	Adj   [][]Edge  // adjacency; both directions present
	Fixed []int     // pre-assigned part per node, or -1
}

// NewGraph creates a graph with n nodes and dims weight dimensions, all
// weights zero and all nodes free.
func NewGraph(n, dims int) *Graph {
	g := &Graph{
		NumW:  dims,
		W:     make([][]int64, n),
		Adj:   make([][]Edge, n),
		Fixed: make([]int, n),
	}
	backing := make([]int64, n*dims)
	for i := range g.W {
		g.W[i] = backing[i*dims : (i+1)*dims : (i+1)*dims]
		g.Fixed[i] = -1
	}
	return g
}

// Reserve presizes the adjacency lists for the given per-node half-edge
// counts, carving all lists out of one backing array. deg[i] must be an
// upper bound on the half-edges Connect will add at node i (parallel edges
// count once per Connect call; merging only shrinks the final length).
// Purely an allocation hint: connectivity and results are unaffected.
func (g *Graph) Reserve(deg []int) {
	total := 0
	for _, d := range deg {
		total += d
	}
	backing := make([]Edge, total)
	off := 0
	for i, d := range deg {
		g.Adj[i] = backing[off : off : off+d]
		off += d
	}
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.W) }

// Connect adds weight w to the undirected edge {u, v}, merging parallel
// edges. Self-edges are ignored.
func (g *Graph) Connect(u, v int, w int64) {
	if u == v || w == 0 {
		return
	}
	g.addHalf(u, v, w)
	g.addHalf(v, u, w)
}

func (g *Graph) addHalf(u, v int, w int64) {
	for i := range g.Adj[u] {
		if g.Adj[u][i].To == v {
			g.Adj[u][i].W += w
			return
		}
	}
	g.Adj[u] = append(g.Adj[u], Edge{To: v, W: w})
}

// TotalW returns the per-dimension sum of node weights.
func (g *Graph) TotalW() []int64 {
	tot := make([]int64, g.NumW)
	for _, w := range g.W {
		for d, x := range w {
			tot[d] += x
		}
	}
	return tot
}

// CutWeight returns the total weight of edges crossing parts.
func CutWeight(g *Graph, part []int) int64 {
	var cut int64
	for u := range g.Adj {
		for _, e := range g.Adj[u] {
			if u < e.To && part[u] != part[e.To] {
				cut += e.W
			}
		}
	}
	return cut
}

// PartWeights returns per-part, per-dimension weight sums for a k-way
// partition.
func PartWeights(g *Graph, part []int, k int) [][]int64 {
	pw := make([][]int64, k)
	for p := range pw {
		pw[p] = make([]int64, g.NumW)
	}
	for u, w := range g.W {
		for d, x := range w {
			pw[part[u]][d] += x
		}
	}
	return pw
}

// Validate checks structural consistency (symmetric adjacency, weight
// dimensions, fixed parts in range).
func (g *Graph) Validate() error {
	n := g.Len()
	for u := range g.Adj {
		if len(g.W[u]) != g.NumW {
			return fmt.Errorf("node %d has %d weights, want %d", u, len(g.W[u]), g.NumW)
		}
		for _, e := range g.Adj[u] {
			if e.To < 0 || e.To >= n {
				return fmt.Errorf("node %d has edge to %d out of range", u, e.To)
			}
			if e.To == u {
				return fmt.Errorf("node %d has a self-edge", u)
			}
			found := false
			for _, r := range g.Adj[e.To] {
				if r.To == u && r.W == e.W {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("edge %d->%d (w=%d) has no symmetric twin", u, e.To, e.W)
			}
		}
	}
	return nil
}
