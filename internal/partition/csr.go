package partition

import (
	"fmt"
	"slices"
)

// CSR is a compressed-sparse-row view of an undirected weighted graph with
// vector node weights: node u's edges occupy Adj[XAdj[u]:XAdj[u+1]] (both
// directions of every undirected edge are present, exactly as in
// Graph.Adj), and its weight vector is W[u*Dims : (u+1)*Dims]. The fast
// partitioner path builds one CSR per Bisect/KWay call and then coarsens,
// grows, and refines over flat int32/int64 arrays instead of chasing
// per-node []Edge slices.
type CSR struct {
	Dims  int     // weight dimensions per node
	XAdj  []int32 // len n+1; prefix offsets into Adj/AdjW
	Adj   []int32 // neighbor indices
	AdjW  []int64 // edge weights, parallel to Adj
	W     []int64 // node weights, flattened [u*Dims+d]
	Fixed []int32 // pre-assigned part per node, or -1
}

// Len returns the node count.
func (c *CSR) Len() int { return len(c.Fixed) }

// BuildCSR flattens g into CSR form. The result shares no memory with g.
func BuildCSR(g *Graph) *CSR {
	return buildCSRInto(new(CSR), g)
}

// buildCSRInto flattens g into c, reusing c's array capacity. Every slot
// of every table is overwritten, so a recycled shell needs no clearing.
func buildCSRInto(c *CSR, g *Graph) *CSR {
	n := g.Len()
	m := 0
	for u := range g.Adj {
		m += len(g.Adj[u])
	}
	c.Dims = g.NumW
	c.XAdj = growTo(c.XAdj, n+1)
	c.Adj = growTo(c.Adj, m)
	c.AdjW = growTo(c.AdjW, m)
	c.W = growTo(c.W, n*g.NumW)
	c.Fixed = growTo(c.Fixed, n)
	pos := int32(0)
	for u := 0; u < n; u++ {
		c.XAdj[u] = pos
		for _, e := range g.Adj[u] {
			c.Adj[pos] = int32(e.To)
			c.AdjW[pos] = e.W
			pos++
		}
		copy(c.W[u*g.NumW:(u+1)*g.NumW], g.W[u])
		c.Fixed[u] = int32(g.Fixed[u])
	}
	c.XAdj[n] = pos
	return c
}

// TotalW returns the per-dimension sum of node weights.
func (c *CSR) TotalW() []int64 {
	tot := make([]int64, c.Dims)
	for u := 0; u < c.Len(); u++ {
		for d := 0; d < c.Dims; d++ {
			tot[d] += c.W[u*c.Dims+d]
		}
	}
	return tot
}

// Validate checks structural consistency of the CSR arrays: offset
// monotonicity, array lengths, neighbor ranges, no self-edges, and
// undirected symmetry (every directed half has a twin of equal weight).
func (c *CSR) Validate() error {
	n := c.Len()
	if c.Dims < 0 {
		return fmt.Errorf("csr: negative weight dimension count %d", c.Dims)
	}
	if len(c.XAdj) != n+1 {
		return fmt.Errorf("csr: %d nodes but %d offsets, want %d", n, len(c.XAdj), n+1)
	}
	if len(c.W) != n*c.Dims {
		return fmt.Errorf("csr: %d node weights, want %d", len(c.W), n*c.Dims)
	}
	if len(c.AdjW) != len(c.Adj) {
		return fmt.Errorf("csr: %d edge weights for %d edges", len(c.AdjW), len(c.Adj))
	}
	if n == 0 {
		if len(c.Adj) != 0 {
			return fmt.Errorf("csr: edges on an empty graph")
		}
		return nil
	}
	if c.XAdj[0] != 0 {
		return fmt.Errorf("csr: offsets start at %d, want 0", c.XAdj[0])
	}
	if int(c.XAdj[n]) != len(c.Adj) {
		return fmt.Errorf("csr: offsets end at %d, want %d", c.XAdj[n], len(c.Adj))
	}
	// Check every offset before scanning any edge: the twin searches below
	// index Adj with other nodes' offsets, so a bad offset anywhere must be
	// rejected before it can send a scan out of bounds.
	for u := 0; u < n; u++ {
		if c.XAdj[u] > c.XAdj[u+1] {
			return fmt.Errorf("csr: offsets decrease at node %d (%d > %d)", u, c.XAdj[u], c.XAdj[u+1])
		}
		if c.Fixed[u] < -1 {
			return fmt.Errorf("csr: node %d fixed to %d, want >= -1", u, c.Fixed[u])
		}
	}
	for u := 0; u < n; u++ {
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			v := c.Adj[i]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("csr: node %d has edge to %d out of range", u, v)
			}
			if int(v) == u {
				return fmt.Errorf("csr: node %d has a self-edge", u)
			}
			found := false
			for j := c.XAdj[v]; j < c.XAdj[v+1]; j++ {
				if int(c.Adj[j]) == u && c.AdjW[j] == c.AdjW[i] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("csr: edge %d->%d (w=%d) has no symmetric twin", u, v, c.AdjW[i])
			}
		}
	}
	return nil
}

// coarsenCSR performs one round of heavy-edge matching over the CSR graph
// and returns the coarse graph, the fine-to-coarse map, and whether the
// graph actually shrank. The matching rules are identical to the legacy
// path's coarsen (descending-incident-weight visit order, merged-weight cap
// of total/3+1 per dimension, fixed-compatibility), but the coarse graph is
// assembled in O(V+E) with a stamp table instead of per-edge adjacency
// scans, and every table is a flat array.
// Coarsening conserves node weight, so the caller passes one total
// vector that serves every level instead of re-summing W per round.
func coarsenCSR(fs *fmScratch, c *CSR, total []int64) (*CSR, []int32, bool) {
	n := c.Len()
	maxW := growTo(fs.maxW, len(total))
	fs.maxW = maxW
	for d, t := range total {
		maxW[d] = t/3 + 1
	}
	match := growTo(fs.match, n)
	fs.match = match
	for i := range match {
		match[i] = -1
	}
	order := growTo(fs.order, n)
	fs.order = order
	incident := growTo(fs.incident, n)
	fs.incident = incident
	var maxInc int64
	for u := 0; u < n; u++ {
		order[u] = int32(u)
		var inc int64
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			inc += c.AdjW[i]
		}
		incident[u] = inc
		if inc > maxInc {
			maxInc = inc
		}
	}
	// Sort the visit order by (incident weight desc, index asc). When the
	// pair packs into a uint64 — node index below 2^20 and incident spread
	// below 2^43, true for every realistic input — a specialized sort over
	// packed keys avoids the per-comparison closure calls; otherwise fall
	// back to the generic comparator.
	if n < 1<<20 && maxInc < 1<<43 {
		keys := growTo(fs.sortKeys, n)
		fs.sortKeys = keys
		for u := 0; u < n; u++ {
			keys[u] = uint64(maxInc-incident[u])<<20 | uint64(u)
		}
		slices.Sort(keys)
		for i, k := range keys {
			order[i] = int32(k & (1<<20 - 1))
		}
	} else {
		slices.SortFunc(order, func(a, b int32) int {
			if incident[a] != incident[b] {
				if incident[a] > incident[b] {
					return -1
				}
				return 1
			}
			return int(a - b)
		})
	}
	matched := 0
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		best, bestW := int32(-1), int64(-1)
		uw := c.W[int(u)*c.Dims : int(u)*c.Dims+c.Dims]
		for i := c.XAdj[u]; i < c.XAdj[u+1]; i++ {
			v := c.Adj[i]
			if match[v] != -1 {
				continue
			}
			if c.Fixed[u] != -1 && c.Fixed[v] != -1 && c.Fixed[u] != c.Fixed[v] {
				continue // cannot merge nodes locked to different parts
			}
			ok := true
			for d := range maxW {
				if uw[d]+c.W[int(v)*c.Dims+d] > maxW[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if w := c.AdjW[i]; w > bestW || (w == bestW && v < best) {
				best, bestW = v, w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
			matched += 2
		} else {
			match[u] = u
		}
	}
	if matched < n/10 {
		return nil, nil, false
	}
	// Number the coarse nodes in ascending fine order (same as legacy).
	cmap := fs.getCmap(n)
	for i := range cmap {
		cmap[i] = -1
	}
	cn := 0
	for u := 0; u < n; u++ {
		if cmap[u] != -1 {
			continue
		}
		cmap[u] = int32(cn)
		if int(match[u]) != u {
			cmap[match[u]] = int32(cn)
		}
		cn++
	}
	cg := fs.getCSR()
	cg.Dims = c.Dims
	cg.XAdj = growTo(cg.XAdj, cn+1)
	cg.W = growTo(cg.W, cn*c.Dims)
	clear(cg.W) // accumulated below; the other tables are fully overwritten
	cg.Fixed = growTo(cg.Fixed, cn)
	for i := range cg.Fixed {
		cg.Fixed[i] = -1
	}
	for u := 0; u < n; u++ {
		cu := int(cmap[u])
		for d := 0; d < c.Dims; d++ {
			cg.W[cu*c.Dims+d] += c.W[u*c.Dims+d]
		}
		if c.Fixed[u] != -1 {
			cg.Fixed[cu] = c.Fixed[u]
		}
	}
	// Assemble the merged coarse adjacency in one sweep: visit each coarse
	// node's (at most two) fine members and deduplicate parallel edges with
	// a stamped position table.
	cg.Adj = growTo(cg.Adj, len(c.Adj))[:0]
	cg.AdjW = growTo(cg.AdjW, len(c.Adj))[:0]
	mark := growTo(fs.mark, cn)
	fs.mark = mark
	pos := growTo(fs.pos, cn)
	fs.pos = pos
	for i := range mark {
		mark[i] = -1
	}
	adj, adjW := c.Adj, c.AdjW
	addEdges := func(cu int32, u int32) {
		lo, hi := c.XAdj[u], c.XAdj[u+1]
		as := adj[lo:hi]
		ws := adjW[lo:hi][:len(as)] // reslice so ws[i] shares as's bound check
		for i, a := range as {
			cv := cmap[a]
			if cv == cu {
				continue
			}
			if mark[cv] == cu {
				cg.AdjW[pos[cv]] += ws[i]
				continue
			}
			mark[cv] = cu
			pos[cv] = int32(len(cg.Adj))
			cg.Adj = append(cg.Adj, cv)
			cg.AdjW = append(cg.AdjW, ws[i])
		}
	}
	next := int32(0)
	for u := 0; u < n; u++ {
		cu := cmap[u]
		if cu != next {
			continue // not the representative (lower-numbered) member
		}
		cg.XAdj[cu] = int32(len(cg.Adj))
		addEdges(cu, int32(u))
		if m := match[u]; int(m) != u {
			addEdges(cu, m)
		}
		next++
	}
	cg.XAdj[cn] = int32(len(cg.Adj))
	return cg, cmap, true
}
