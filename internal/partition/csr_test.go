package partition

import (
	"math/rand"
	"strings"
	"testing"
)

// TestBuildCSRRoundTrip checks that the flattened view reproduces the
// Graph exactly: weights, fixed assignments, and every directed edge half
// in the original adjacency order.
func TestBuildCSRRoundTrip(t *testing.T) {
	g := randGraph(80, 5, 3, 7, true)
	c := BuildCSR(g)
	if err := c.Validate(); err != nil {
		t.Fatalf("built CSR invalid: %v", err)
	}
	if c.Len() != g.Len() || c.Dims != g.NumW {
		t.Fatalf("shape: %d/%d nodes, %d/%d dims", c.Len(), g.Len(), c.Dims, g.NumW)
	}
	for u := 0; u < g.Len(); u++ {
		for d := 0; d < g.NumW; d++ {
			if c.W[u*c.Dims+d] != g.W[u][d] {
				t.Fatalf("node %d dim %d weight %d, want %d", u, d, c.W[u*c.Dims+d], g.W[u][d])
			}
		}
		if int(c.Fixed[u]) != g.Fixed[u] {
			t.Fatalf("node %d fixed %d, want %d", u, c.Fixed[u], g.Fixed[u])
		}
		deg := int(c.XAdj[u+1] - c.XAdj[u])
		if deg != len(g.Adj[u]) {
			t.Fatalf("node %d degree %d, want %d", u, deg, len(g.Adj[u]))
		}
		for i, e := range g.Adj[u] {
			j := int(c.XAdj[u]) + i
			if int(c.Adj[j]) != e.To || c.AdjW[j] != e.W {
				t.Fatalf("node %d edge %d: (%d,%d), want (%d,%d)", u, i, c.Adj[j], c.AdjW[j], e.To, e.W)
			}
		}
	}
	tg, tc := g.TotalW(), c.TotalW()
	for d := range tg {
		if tg[d] != tc[d] {
			t.Fatalf("total dim %d: %d vs %d", d, tc[d], tg[d])
		}
	}
}

// TestCSRValidateMalformed drives CSR.Validate through every malformation
// it documents.
func TestCSRValidateMalformed(t *testing.T) {
	// good is a 3-node path 0-1-2 with unit weights.
	good := func() *CSR {
		return &CSR{
			Dims:  1,
			XAdj:  []int32{0, 1, 3, 4},
			Adj:   []int32{1, 0, 2, 1},
			AdjW:  []int64{5, 5, 7, 7},
			W:     []int64{1, 1, 1},
			Fixed: []int32{-1, -1, -1},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good CSR rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*CSR)
		want string
	}{
		{"negative dims", func(c *CSR) { c.Dims = -1 }, "negative weight dimension"},
		{"offset count", func(c *CSR) { c.XAdj = c.XAdj[:3] }, "offsets"},
		{"node weight count", func(c *CSR) { c.W = c.W[:2] }, "node weights"},
		{"edge weight count", func(c *CSR) { c.AdjW = c.AdjW[:3] }, "edge weights"},
		{"offset start", func(c *CSR) { c.XAdj[0] = 1 }, "offsets start"},
		{"offset end", func(c *CSR) { c.XAdj[3] = 3 }, "offsets end"},
		{"decreasing offsets", func(c *CSR) { c.XAdj[1] = 3; c.XAdj[2] = 1 }, "offsets decrease"},
		{"fixed range", func(c *CSR) { c.Fixed[1] = -2 }, "fixed"},
		{"neighbor range", func(c *CSR) { c.Adj[0] = 9 }, "out of range"},
		{"self edge", func(c *CSR) { c.Adj[0] = 0 }, "self-edge"},
		{"missing twin", func(c *CSR) { c.Adj[3] = 0; c.AdjW[3] = 7 }, "twin"},
		{"weight mismatch twin", func(c *CSR) { c.AdjW[2] = 8 }, "twin"},
	}
	for _, tc := range cases {
		c := good()
		tc.mut(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
	empty := &CSR{XAdj: []int32{0}}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty CSR rejected: %v", err)
	}
	badEmpty := &CSR{XAdj: []int32{0}, Adj: []int32{0}, AdjW: []int64{1}}
	if err := badEmpty.Validate(); err == nil {
		t.Error("empty CSR with edges accepted")
	}
}

// TestGraphValidateMalformed covers Graph.Validate on inputs a buggy
// caller could hand the partitioner entry points.
func TestGraphValidateMalformed(t *testing.T) {
	mk := func() *Graph {
		g := NewGraph(3, 2)
		g.Connect(0, 1, 4)
		g.Connect(1, 2, 6)
		return g
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("good graph rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Graph)
	}{
		{"short weight vector", func(g *Graph) { g.W[1] = g.W[1][:1] }},
		{"edge out of range", func(g *Graph) { g.Adj[0] = append(g.Adj[0], Edge{To: 5, W: 1}) }},
		{"negative target", func(g *Graph) { g.Adj[0] = append(g.Adj[0], Edge{To: -1, W: 1}) }},
		{"self edge", func(g *Graph) { g.Adj[2] = append(g.Adj[2], Edge{To: 2, W: 1}) }},
		{"asymmetric edge", func(g *Graph) { g.Adj[0] = append(g.Adj[0], Edge{To: 2, W: 3}) }},
		{"twin weight mismatch", func(g *Graph) { g.Adj[0][0].W = 99 }},
	}
	for _, tc := range cases {
		g := mk()
		tc.mut(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestCoarsenCSRMatchesLegacy pins the fast coarsening to the legacy one:
// identical matchings produce an identical coarse graph up to adjacency
// order, so compare node count, weights, fixed flags, and the merged
// neighbor weight maps.
func TestCoarsenCSRMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randGraph(200, 6, 2, seed, seed%2 == 0)
		cgLegacy, cmapLegacy, okLegacy := coarsen(&bscratch{}, g)
		csr := BuildCSR(g)
		cgFast, cmapFast, okFast := coarsenCSR(&fmScratch{}, csr, csr.TotalW())
		if okLegacy != okFast {
			t.Fatalf("seed %d: shrunk %v vs %v", seed, okFast, okLegacy)
		}
		if !okLegacy {
			continue
		}
		if cgFast.Len() != cgLegacy.Len() {
			t.Fatalf("seed %d: %d coarse nodes, want %d", seed, cgFast.Len(), cgLegacy.Len())
		}
		for u := range cmapLegacy {
			if int(cmapFast[u]) != cmapLegacy[u] {
				t.Fatalf("seed %d: cmap[%d] = %d, want %d", seed, u, cmapFast[u], cmapLegacy[u])
			}
		}
		if err := cgFast.Validate(); err != nil {
			t.Fatalf("seed %d: coarse CSR invalid: %v", seed, err)
		}
		for cu := 0; cu < cgLegacy.Len(); cu++ {
			for d := 0; d < cgLegacy.NumW; d++ {
				if cgFast.W[cu*cgFast.Dims+d] != cgLegacy.W[cu][d] {
					t.Fatalf("seed %d: coarse node %d dim %d weight mismatch", seed, cu, d)
				}
			}
			if int(cgFast.Fixed[cu]) != cgLegacy.Fixed[cu] {
				t.Fatalf("seed %d: coarse node %d fixed mismatch", seed, cu)
			}
			want := map[int32]int64{}
			for _, e := range cgLegacy.Adj[cu] {
				want[int32(e.To)] = e.W
			}
			got := map[int32]int64{}
			for i := cgFast.XAdj[cu]; i < cgFast.XAdj[cu+1]; i++ {
				got[cgFast.Adj[i]] = cgFast.AdjW[i]
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d: coarse node %d has %d neighbors, want %d", seed, cu, len(got), len(want))
			}
			for v, w := range want {
				if got[v] != w {
					t.Fatalf("seed %d: coarse edge %d-%d weight %d, want %d", seed, cu, v, got[v], w)
				}
			}
		}
	}
}

// randGraph builds a connected random graph: a spanning path plus extra
// random edges up to roughly the requested average degree, weights in
// [1,100] per dimension, and (optionally) a few fixed nodes.
func randGraph(n, deg, dims int, seed int64, withFixed bool) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n, dims)
	for u := 0; u < n; u++ {
		for d := 0; d < dims; d++ {
			g.W[u][d] = int64(1 + rng.Intn(100))
		}
	}
	for u := 1; u < n; u++ {
		g.Connect(u-1, u, int64(1+rng.Intn(50)))
	}
	extra := n * (deg - 2) / 2
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.Connect(u, v, int64(1+rng.Intn(50)))
		}
	}
	if withFixed {
		for i := 0; i <= n/64; i++ {
			g.Fixed[rng.Intn(n)] = rng.Intn(2)
		}
	}
	return g
}
