package partition

import (
	"fmt"
	"testing"
)

// benchGraphs spans the sizes the fast path is meant to win on: the CSR
// rebuild cost must pay for itself by 1k nodes, and the gain-bucket FM
// has to hold its O((V+E) log V)-ish profile out to 100k.
var benchGraphs = []struct {
	n, deg, dims int
}{
	{1_000, 6, 1},
	{10_000, 8, 2},
	{100_000, 8, 2},
}

func BenchmarkBisect(b *testing.B) {
	for _, bg := range benchGraphs {
		g := randGraph(bg.n, bg.deg, bg.dims, 1, true)
		for _, legacy := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/deg=%d/dims=%d/legacy=%v", bg.n, bg.deg, bg.dims, legacy)
			b.Run(name, func(b *testing.B) {
				opts := Options{Tol: []float64{0.15}, Legacy: legacy, Workers: 1}
				b.ReportAllocs()
				var cut int64
				for i := 0; i < b.N; i++ {
					part, err := Bisect(g, opts)
					if err != nil {
						b.Fatal(err)
					}
					cut = CutWeight(g, part)
				}
				b.ReportMetric(float64(cut), "cut")
			})
		}
	}
}

func BenchmarkKWay(b *testing.B) {
	for _, bg := range benchGraphs[:2] {
		g := randGraph(bg.n, bg.deg, bg.dims, 1, true)
		for _, legacy := range []bool{false, true} {
			name := fmt.Sprintf("k=4/n=%d/dims=%d/legacy=%v", bg.n, bg.dims, legacy)
			b.Run(name, func(b *testing.B) {
				opts := Options{Tol: []float64{0.15}, Legacy: legacy, Workers: 1}
				b.ReportAllocs()
				var cut int64
				for i := 0; i < b.N; i++ {
					part, err := KWay(g, 4, opts)
					if err != nil {
						b.Fatal(err)
					}
					cut = CutWeight(g, part)
				}
				b.ReportMetric(float64(cut), "cut")
			})
		}
	}
}
