package bench

// JPEG kernels (cjpeg: forward DCT + quantization with zigzag; djpeg:
// dequantization + inverse transform) and EPIC-style pyramid coding
// (epic: separable lowpass/highpass decomposition; unepic: reconstruction).

const jpegCommon = `
global int image[1024];
global int jQuant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99};
global int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63};
global int workBlk[64];
global int tmpBlk[64];

// fdct8 is a separable integer forward transform on workBlk.
func fdct8() {
    int i;
    int j;
    int k;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
            int acc = 0;
            for (k = 0; k < 8; k = k + 1) {
                int c = 7 - ((j * (2 * k + 1)) % 13);
                acc = acc + workBlk[i * 8 + k] * c;
            }
            tmpBlk[i * 8 + j] = acc / 4;
        }
    }
    for (j = 0; j < 8; j = j + 1) {
        for (i = 0; i < 8; i = i + 1) {
            int acc = 0;
            for (k = 0; k < 8; k = k + 1) {
                int c = 7 - ((i * (2 * k + 1)) % 13);
                acc = acc + tmpBlk[k * 8 + j] * c;
            }
            workBlk[i * 8 + j] = acc / 32;
        }
    }
}
`

func init() {
	register(Benchmark{
		Name: "cjpeg",
		Want: -1012,
		Source: lcg + jpegCommon + `
global int coded[1024];

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { image[i] = rnd(256) - 128; }
    int by;
    int sum = 0;
    for (by = 0; by < 4; by = by + 1) {
        int bx;
        for (bx = 0; bx < 4; bx = bx + 1) {
            int y;
            for (y = 0; y < 8; y = y + 1) {
                int x;
                for (x = 0; x < 8; x = x + 1) {
                    workBlk[y * 8 + x] = image[(by * 8 + y) * 32 + bx * 8 + x];
                }
            }
            fdct8();
            for (i = 0; i < 64; i = i + 1) {
                int q = workBlk[zigzag[i]] / jQuant[i];
                coded[(by * 4 + bx) * 64 + i] = q;
                sum = sum + q * (1 + i % 3);
            }
        }
    }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "djpeg",
		Want: 411449,
		Source: lcg + jpegCommon + `
global int decoded[1024];

func main() int {
    int sum = 0;
    int blk;
    int i;
    for (blk = 0; blk < 16; blk = blk + 1) {
        for (i = 0; i < 64; i = i + 1) { workBlk[i] = 0; }
        // Sparse coefficients, as in real entropy-decoded blocks.
        int nz = 8 + rnd(8);
        for (i = 0; i < nz; i = i + 1) {
            int pos = rnd(64);
            workBlk[zigzag[pos]] = srnd(30) * jQuant[pos];
        }
        fdct8();
        for (i = 0; i < 64; i = i + 1) {
            int v = workBlk[i] / 8 + 128;
            if (v < 0) { v = 0; }
            if (v > 255) { v = 255; }
            decoded[blk * 64 + i] = v;
        }
    }
    for (i = 0; i < 1024; i = i + 1) { sum = sum + decoded[i] * (1 + i % 5); }
    return sum % 1000003;
}`,
	})
}

const epicCommon = `
global int img[1024];
global int lowTap[5] = {1, 4, 6, 4, 1};
global int highTap[5] = {-1, -2, 6, -2, -1};
global int pyramid[1024];
`

func init() {
	register(Benchmark{
		Name: "epic",
		Want: 195425,
		Source: lcg + epicCommon + `
// decompose filters each row into a low half and a high half.
func decompose(int rows, int cols) {
    int r;
    for (r = 0; r < rows; r = r + 1) {
        int c;
        for (c = 0; c < cols; c = c + 2) {
            int lo = 0;
            int hi = 0;
            int k;
            for (k = 0; k < 5; k = k + 1) {
                int idx = c + k - 2;
                if (idx < 0) { idx = -idx; }
                if (idx >= cols) { idx = 2 * cols - idx - 2; }
                int px = img[r * cols + idx];
                lo = lo + lowTap[k] * px;
                hi = hi + highTap[k] * px;
            }
            pyramid[r * cols + c / 2] = lo / 16;
            pyramid[r * cols + cols / 2 + c / 2] = hi / 16;
        }
    }
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { img[i] = rnd(256); }
    decompose(32, 32);
    // Second level on the low band.
    for (i = 0; i < 1024; i = i + 1) { img[i] = pyramid[i]; }
    decompose(32, 16);
    int sum = 0;
    for (i = 0; i < 1024; i = i + 1) { sum = sum + pyramid[i] * (1 + i % 7); }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "unepic",
		Want: 1284,
		Source: lcg + epicCommon + `
// reconstruct merges low/high halves of each row back into img.
func reconstruct(int rows, int cols) {
    int r;
    for (r = 0; r < rows; r = r + 1) {
        int c;
        for (c = 0; c < cols; c = c + 2) {
            int lo = pyramid[r * cols + c / 2];
            int hi = pyramid[r * cols + cols / 2 + c / 2];
            img[r * cols + c] = lo + hi;
            img[r * cols + c + 1] = lo - hi;
        }
    }
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { pyramid[i] = srnd(128); }
    reconstruct(32, 32);
    // Smooth pass over the reconstruction (models the synthesis filter).
    int sum = 0;
    for (i = 2; i < 1022; i = i + 1) {
        int v = (img[i - 2] + 4 * img[i - 1] + 6 * img[i] + 4 * img[i + 1] + img[i + 2]) / 16;
        sum = sum + v % 251;
    }
    return sum % 1000003;
}`,
	})
}
