package bench

// Floating-point benchmarks in the spirit of Mediabench's mesa and rasta:
// mesatx runs a 4x4-matrix vertex-transform pipeline over a heap vertex
// buffer (mesa's texgen/transform hot loop); rastaflt runs a critical-band
// filterbank of first-order IIR filters over framed audio (rasta's PLP
// front end). Both keep their float state in global coefficient tables and
// per-channel state arrays, so the float units and the float data path of
// the partitioners get exercised end to end.

func init() {
	register(Benchmark{
		Name: "mesatx",
		Want: 7798,
		Source: lcg + `
global float viewMat[16] = {
    0.7, -0.2, 0.1, 0.0,
    0.3, 0.8, -0.1, 0.0,
    -0.2, 0.1, 0.9, 0.0,
    1.5, -2.0, 0.25, 1.0};
global float projMat[16] = {
    1.2, 0.0, 0.0, 0.0,
    0.0, 1.6, 0.0, 0.0,
    0.0, 0.0, -1.05, -1.0,
    0.0, 0.0, -2.1, 0.0};
global int litCount;

func transform(float *vin, float *vout, int n) {
    int v;
    for (v = 0; v < n; v = v + 1) {
        float x = vin[v * 4];
        float y = vin[v * 4 + 1];
        float z = vin[v * 4 + 2];
        float w = vin[v * 4 + 3];
        // Two chained 4x4 transforms, fully unrolled dot products.
        float ex = x * viewMat[0] + y * viewMat[4] + z * viewMat[8] + w * viewMat[12];
        float ey = x * viewMat[1] + y * viewMat[5] + z * viewMat[9] + w * viewMat[13];
        float ez = x * viewMat[2] + y * viewMat[6] + z * viewMat[10] + w * viewMat[14];
        float ew = x * viewMat[3] + y * viewMat[7] + z * viewMat[11] + w * viewMat[15];
        float cx = ex * projMat[0] + ey * projMat[4] + ez * projMat[8] + ew * projMat[12];
        float cy = ex * projMat[1] + ey * projMat[5] + ez * projMat[9] + ew * projMat[13];
        float cz = ex * projMat[2] + ey * projMat[6] + ez * projMat[10] + ew * projMat[14];
        float cw = ex * projMat[3] + ey * projMat[7] + ez * projMat[11] + ew * projMat[15];
        if (cw < 0.0001 && cw > -0.0001) { cw = 1.0; }
        vout[v * 4] = cx / cw;
        vout[v * 4 + 1] = cy / cw;
        vout[v * 4 + 2] = cz / cw;
        vout[v * 4 + 3] = 1.0;
        if (cz < 0.0) { litCount = litCount + 1; }
    }
}

func main() int {
    int n = 160;
    float *vin;
    float *vout;
    vin = (float*)malloc(n * 4 * 8);
    vout = (float*)malloc(n * 4 * 8);
    int i;
    for (i = 0; i < n * 4; i = i + 1) {
        vin[i] = (float)(srnd(100)) / 10.0;
    }
    transform(vin, vout, n);
    int sum = 0;
    for (i = 0; i < n * 4; i = i + 1) {
        sum = sum + (int)(vout[i] * 16.0) % 257;
    }
    return (sum + litCount) % 1000003;
}`,
	})

	register(Benchmark{
		Name: "rastaflt",
		Want: 77668,
		Source: lcg + `
global float bandCoef[16] = {
    0.98, 0.96, 0.94, 0.92, 0.90, 0.88, 0.86, 0.84,
    0.82, 0.80, 0.78, 0.76, 0.74, 0.72, 0.70, 0.68};
global float bandGain[16] = {
    0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55,
    0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95};
global float bandState[16];
global float energy[16];

// filterFrame runs 16 first-order IIR band filters over one frame and
// accumulates per-band energy.
func filterFrame(float *frame, int len) {
    int b;
    for (b = 0; b < 16; b = b + 1) {
        float s = bandState[b];
        float a = bandCoef[b];
        float g = bandGain[b];
        float e = 0.0;
        int i;
        for (i = 0; i < len; i = i + 1) {
            s = a * s + g * frame[i];
            e = e + s * s;
        }
        bandState[b] = s;
        energy[b] = energy[b] + e;
    }
}

func main() int {
    int frames = 24;
    int flen = 48;
    float *frame;
    frame = (float*)malloc(flen * 8);
    int f;
    for (f = 0; f < frames; f = f + 1) {
        int i;
        for (i = 0; i < flen; i = i + 1) {
            frame[i] = (float)(srnd(1000)) / 100.0;
        }
        filterFrame(frame, flen);
    }
    int sum = 0;
    int b;
    for (b = 0; b < 16; b = b + 1) {
        sum = sum + (int)(energy[b]) % 9973 + (int)(bandState[b] * 8.0);
    }
    return sum % 1000003;
}`,
	})
}
