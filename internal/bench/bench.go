// Package bench contains the benchmark programs the evaluation runs,
// written in mclang. They are synthetic stand-ins for the paper's suite
// (Mediabench applications plus DSP kernels, §4.1): each mirrors the data
// objects and access structure of the original's hot kernel — lookup
// tables, coefficient arrays, heap-allocated sample buffers, and state —
// at sizes small enough to profile by interpretation.
//
// Every program is deterministic: inputs come from an in-language linear
// congruential generator, and main() returns a checksum the test suite
// pins.
package bench

import "fmt"

// Benchmark is one evaluation program.
type Benchmark struct {
	// Name matches the paper's benchmark naming where applicable.
	Name string
	// Source is the mclang program text.
	Source string
	// Want is main's expected return value (determinism pin).
	Want int64
	// Exhaustive marks the benchmarks small enough for the Figure 9
	// exhaustive data-mapping search.
	Exhaustive bool
}

var registry []Benchmark

func register(b Benchmark) {
	registry = append(registry, b)
}

// All returns every benchmark in registration (paper listing) order.
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// Get returns the named benchmark.
func Get(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Names lists all benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// lcg is the shared input generator prelude: a deterministic linear
// congruential generator plus helpers, prepended to sources that use it.
const lcg = `
global int lcg_seed = 12345;
func lcg_next() int {
    lcg_seed = (lcg_seed * 1103515245 + 12345) % 2147483648;
    return lcg_seed;
}
// rnd returns a value in [0, m).
func rnd(int m) int { return lcg_next() % m; }
// srnd returns a value in [-m, m).
func srnd(int m) int { return lcg_next() % (2 * m) - m; }
`
