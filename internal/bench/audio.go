package bench

// G.721-style ADPCM with adaptive predictor (g721enc/g721dec) and GSM
// 06.10-style LPC/LTP coding (gsmencode/gsmdecode). The originals' hot
// kernels mix table lookups, two-tap/six-tap filter state updates, and
// per-sample quantization — reproduced here over heap sample buffers.

const g721Common = `
global int qtab[7] = {-124, 80, 178, 246, 300, 349, 400};
global int witab[8] = {-12, 18, 41, 64, 112, 198, 355, 1122};
global int fitab[8] = {0, 0, 0, 512, 1024, 1536, 3072, 5120};
global int predState[8];
global int stepScale;

func quantize(int d) int {
    int mag = d;
    if (mag < 0) { mag = -mag; }
    int exp = 0;
    int m = mag;
    while (m > 1 && exp < 14) { m = m >> 1; exp = exp + 1; }
    int mant = 0;
    if (exp > 6) { mant = 7; } else { mant = exp; }
    int i = 0;
    int code = 0;
    for (i = 0; i < 7; i = i + 1) {
        if (mag * 4 > qtab[i] + stepScale) { code = i + 1; }
    }
    if (d < 0) { code = code | 8; }
    return code;
}

func predict() int {
    int acc = 0;
    int i;
    for (i = 0; i < 6; i = i + 1) {
        acc = acc + predState[i] * (i + 2);
    }
    return acc >> 4;
}

func updateState(int code, int dq) {
    int i;
    for (i = 5; i > 0; i = i - 1) {
        predState[i] = predState[i - 1];
    }
    predState[0] = dq;
    stepScale = stepScale + witab[code & 7] - (stepScale >> 5);
    if (stepScale < 0) { stepScale = 0; }
    if (stepScale > 6000) { stepScale = 6000; }
    predState[6] = predState[6] + fitab[code & 7] - (predState[6] >> 6);
    predState[7] = code;
}

func reconstruct(int code) int {
    int mag = (code & 7) * (stepScale + 64) >> 5;
    if ((code & 8) != 0) { return -mag; }
    return mag;
}
`

func init() {
	register(Benchmark{
		Name: "g721enc",
		Want: 27572,
		Source: lcg + g721Common + `
func main() int {
    int n = 700;
    int *pcm;
    int *out;
    pcm = malloc(n * 8);
    out = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { pcm[i] = srnd(8000); }
    for (i = 0; i < n; i = i + 1) {
        int se = predict();
        int d = pcm[i] - se;
        int code = quantize(d);
        int dq = reconstruct(code);
        updateState(code, dq);
        out[i] = code;
    }
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + out[i] * (1 + i % 5); }
    return (sum + stepScale + predState[0]) % 1000003;
}`,
	})

	register(Benchmark{
		Name: "g721dec",
		Want: 420,
		Source: lcg + g721Common + `
func main() int {
    int n = 700;
    int *codes;
    int *pcm;
    codes = malloc(n * 8);
    pcm = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { codes[i] = rnd(16); }
    for (i = 0; i < n; i = i + 1) {
        int se = predict();
        int dq = reconstruct(codes[i]);
        updateState(codes[i], dq);
        int val = se + dq;
        if (val > 32767) { val = 32767; }
        if (val < -32768) { val = -32768; }
        pcm[i] = val;
    }
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + pcm[i] % 127; }
    return (sum + predState[2]) % 1000003;
}`,
	})
}

const gsmCommon = `
global int lpcCoef[8] = {13107, 8192, 4096, 2048, 1024, 512, 256, 128};
global int ltpGain[4] = {3277, 11469, 21299, 32767};
global int history[40];
global int gsmState[4];

// shortTermFilter runs an 8-tap lattice-like filter over one 40-sample
// subframe held in buf, using and updating the shared history.
func shortTermFilter(int *buf, int len) {
    int i;
    int j;
    for (i = 0; i < len; i = i + 1) {
        int acc = buf[i] * 16384;
        for (j = 0; j < 8; j = j + 1) {
            int h = 0;
            if (i - j - 1 >= 0) { h = buf[i - j - 1]; } else { h = history[40 + i - j - 1]; }
            acc = acc - lpcCoef[j] * h;
        }
        buf[i] = acc / 16384;
    }
    for (i = 0; i < 40; i = i + 1) {
        if (len - 40 + i >= 0) { history[i] = buf[len - 40 + i]; }
    }
}

// ltpSearch finds the best lag in [1,16] maximizing correlation with the
// history, returning lag*4 + gain index.
func ltpSearch(int *buf, int len) int {
    int bestLag = 1;
    int bestCorr = -1000000000;
    int lag;
    for (lag = 1; lag <= 16; lag = lag + 1) {
        int corr = 0;
        int i;
        for (i = 0; i < len; i = i + 1) {
            int h = 0;
            if (i - lag >= 0) { h = buf[i - lag]; } else { h = history[40 + i - lag]; }
            corr = corr + buf[i] * h;
        }
        if (corr > bestCorr) { bestCorr = corr; bestLag = lag; }
    }
    int g = 0;
    if (bestCorr > 0) { g = bestCorr % 4; }
    return bestLag * 4 + g;
}
`

func init() {
	register(Benchmark{
		Name: "gsmencode",
		Want: 5533,
		Source: lcg + gsmCommon + `
func main() int {
    int frames = 12;
    int *frame;
    int *params;
    frame = malloc(40 * 8);
    params = malloc(frames * 8);
    int f;
    int sum = 0;
    for (f = 0; f < frames; f = f + 1) {
        int i;
        for (i = 0; i < 40; i = i + 1) { frame[i] = srnd(4000); }
        shortTermFilter(frame, 40);
        int p = ltpSearch(frame, 40);
        params[f] = p;
        int g = ltpGain[p % 4];
        gsmState[0] = gsmState[0] + g % 1000;
        sum = sum + p;
    }
    return (sum + gsmState[0]) % 1000003;
}`,
	})

	register(Benchmark{
		Name: "gsmdecode",
		Want: 2273,
		Source: lcg + gsmCommon + `
func main() int {
    int frames = 12;
    int *frame;
    frame = malloc(40 * 8);
    int f;
    int sum = 0;
    for (f = 0; f < frames; f = f + 1) {
        int lagParam = rnd(64) + 4;
        int lag = lagParam / 4;
        int gain = ltpGain[lagParam % 4];
        int i;
        for (i = 0; i < 40; i = i + 1) {
            int h = 0;
            if (i - lag >= 0) { h = frame[i - lag]; } else { h = history[40 + i - lag]; }
            frame[i] = (srnd(500) * 8 + gain * h / 32768);
        }
        shortTermFilter(frame, 40);
        for (i = 0; i < 40; i = i + 1) { sum = sum + frame[i] % 31; }
    }
    return (sum + history[5]) % 1000003;
}`,
	})
}
