package bench

import (
	"testing"

	"mcpart/internal/interp"
	"mcpart/internal/ir"
	"mcpart/internal/mclang"
	"mcpart/internal/pointsto"
)

func runBench(t *testing.T, b Benchmark) (interp.Value, *interp.Profile, *ir.Module) {
	t.Helper()
	mod, err := mclang.Compile(b.Source, b.Name)
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	pointsto.Analyze(mod)
	in := interp.New(mod, interp.Options{MaxSteps: 5_000_000})
	v, err := in.RunMain()
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return v, in.Profile(), mod
}

func TestAllBenchmarksCompileAndRun(t *testing.T) {
	if len(All()) < 17 {
		t.Fatalf("only %d benchmarks registered", len(All()))
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			v, prof, mod := runBench(t, b)
			if v.Kind != interp.ValInt {
				t.Fatalf("main returned %s, want int", v)
			}
			t.Logf("%s: checksum=%d steps=%d objects=%d", b.Name, v.I, prof.Steps, len(mod.Objects))
			if b.Want != 0 && v.I != b.Want {
				t.Errorf("checksum = %d, want %d", v.I, b.Want)
			}
			if prof.Steps > 2_000_000 {
				t.Errorf("too slow to profile: %d steps", prof.Steps)
			}
			if prof.Steps < 5_000 {
				t.Errorf("trivially small: %d steps", prof.Steps)
			}
			// The evaluation needs data objects worth partitioning.
			if len(mod.Objects) < 3 {
				t.Errorf("only %d data objects", len(mod.Objects))
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, b := range All() {
		v1, _, _ := runBench(t, b)
		v2, _, _ := runBench(t, b)
		if v1.I != v2.I {
			t.Errorf("%s: nondeterministic: %d vs %d", b.Name, v1.I, v2.I)
		}
	}
}

func TestExhaustiveSetSmall(t *testing.T) {
	n := 0
	for _, b := range All() {
		if !b.Exhaustive {
			continue
		}
		n++
		_, _, mod := runBench(t, b)
		if len(mod.Objects) > 12 {
			t.Errorf("%s marked exhaustive but has %d objects", b.Name, len(mod.Objects))
		}
	}
	if n < 2 {
		t.Errorf("only %d exhaustive benchmarks; Figure 9 needs rawcaudio and rawdaudio", n)
	}
	if _, err := Get("rawcaudio"); err != nil {
		t.Error(err)
	}
	if _, err := Get("rawdaudio"); err != nil {
		t.Error(err)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("Get accepted unknown name")
	}
}

func TestNamesUniqueAndOrdered(t *testing.T) {
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate benchmark %q", n)
		}
		seen[n] = true
	}
}
