package bench

// IMA ADPCM coder/decoder pair, mirroring Mediabench's adpcm (rawcaudio
// encodes PCM to 4-bit codes, rawdaudio decodes back). Data objects: the
// 89-entry step-size table, the 16-entry index-adjust table, the two-word
// coder state, and heap sample buffers — few enough merged objects that the
// paper could search all data mappings exhaustively (Figure 9).

const adpcmTables = `
global int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
global int indexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
global int coderState[2];
`

const adpcmEncode = `
func adpcm_encode(int *inp, int *outp, int len) {
    int valpred = coderState[0];
    int index = coderState[1];
    int step = stepsizeTable[index];
    int i;
    for (i = 0; i < len; i = i + 1) {
        int val = inp[i];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
        int half = step >> 1;
        if (diff >= half) { delta = delta | 2; diff = diff - half; vpdiff = vpdiff + half; }
        int quarter = step >> 2;
        if (diff >= quarter) { delta = delta | 1; vpdiff = vpdiff + quarter; }
        if (sign > 0) { valpred = valpred - vpdiff; } else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        if (valpred < -32768) { valpred = -32768; }
        delta = delta | sign;
        index = index + indexTable[delta];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        step = stepsizeTable[index];
        outp[i] = delta;
    }
    coderState[0] = valpred;
    coderState[1] = index;
}
`

const adpcmDecode = `
func adpcm_decode(int *inp, int *outp, int len) {
    int valpred = coderState[0];
    int index = coderState[1];
    int step = stepsizeTable[index];
    int i;
    for (i = 0; i < len; i = i + 1) {
        int delta = inp[i];
        index = index + indexTable[delta & 15];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        int sign = delta & 8;
        int mag = delta & 7;
        int vpdiff = step >> 3;
        if ((mag & 4) != 0) { vpdiff = vpdiff + step; }
        if ((mag & 2) != 0) { vpdiff = vpdiff + (step >> 1); }
        if ((mag & 1) != 0) { vpdiff = vpdiff + (step >> 2); }
        if (sign != 0) { valpred = valpred - vpdiff; } else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        if (valpred < -32768) { valpred = -32768; }
        step = stepsizeTable[index];
        outp[i] = valpred;
    }
    coderState[0] = valpred;
    coderState[1] = index;
}
`

func init() {
	register(Benchmark{
		Name:       "rawcaudio",
		Want:       26620,
		Exhaustive: true,
		Source: lcg + adpcmTables + adpcmEncode + `
func main() int {
    int n = 1200;
    int *pcm;
    int *code;
    pcm = malloc(n * 8);
    code = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { pcm[i] = srnd(3000); }
    adpcm_encode(pcm, code, n);
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + code[i] * (i % 7 + 1); }
    return (sum + coderState[0] + coderState[1]) % 1000003;
}`,
	})

	register(Benchmark{
		Name:       "rawdaudio",
		Want:       69993,
		Exhaustive: true,
		Source: lcg + adpcmTables + adpcmDecode + `
func main() int {
    int n = 1200;
    int *code;
    int *pcm;
    code = malloc(n * 8);
    pcm = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { code[i] = rnd(16); }
    adpcm_decode(code, pcm, n);
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + pcm[i] % 97; }
    return (sum + coderState[0] * 3 + coderState[1]) % 1000003;
}`,
	})
}
