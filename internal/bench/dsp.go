package bench

// DSP kernels from the paper's second suite: fir (finite impulse response
// filter), fsed (Floyd–Steinberg error diffusion — called out in §4.4 for
// its heavy intercluster traffic), sobel (3x3 edge detection), halftone
// (ordered dithering against a Bayer matrix), and viterbi (add-compare-
// select trellis decoding with separate metric and traceback arrays).

func init() {
	register(Benchmark{
		Name:       "fir",
		Want:       -218,
		Exhaustive: true,
		Source: lcg + `
global int coeffs[32] = {
    3, -5, 8, -12, 17, -23, 31, -40,
    51, -63, 78, -94, 113, -133, 156, -180,
    180, -156, 133, -113, 94, -78, 63, -51,
    40, -31, 23, -17, 12, -8, 5, -3};
global int firState[32];

func fir(int *x, int *y, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int j;
        for (j = 31; j > 0; j = j - 1) { firState[j] = firState[j - 1]; }
        firState[0] = x[i];
        int acc = 0;
        for (j = 0; j < 32; j = j + 1) { acc = acc + coeffs[j] * firState[j]; }
        y[i] = acc / 1024;
    }
}

func main() int {
    int n = 400;
    int *x;
    int *y;
    x = malloc(n * 8);
    y = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { x[i] = srnd(1000); }
    fir(x, y, n);
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + y[i] % 211; }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "fsed",
		Want: 3134,
		Source: lcg + `
global int srcImg[1024];
global int dstImg[1024];
global int errRow[66];

func fsed(int rows, int cols) {
    int r;
    for (r = 0; r < rows; r = r + 1) {
        int carry = 0;
        int c;
        for (c = 0; c < cols; c = c + 1) {
            int v = srcImg[r * cols + c] + errRow[c + 1] + carry;
            int out = 0;
            if (v > 127) { out = 255; }
            dstImg[r * cols + c] = out;
            int e = v - out;
            carry = e * 7 / 16;
            errRow[c] = errRow[c] + e * 3 / 16;
            errRow[c + 1] = e * 5 / 16;
            errRow[c + 2] = errRow[c + 2] + e / 16;
        }
    }
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { srcImg[i] = rnd(256); }
    for (i = 0; i < 66; i = i + 1) { errRow[i] = 0; }
    fsed(32, 32);
    int sum = 0;
    for (i = 0; i < 1024; i = i + 1) { sum = sum + dstImg[i] / 255 * (1 + i % 11); }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "sobel",
		Want: 403897,
		Source: lcg + `
global int gray[1024];
global int edges[1024];
global int gxMask[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
global int gyMask[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};

func sobel(int rows, int cols) {
    int r;
    for (r = 1; r < rows - 1; r = r + 1) {
        int c;
        for (c = 1; c < cols - 1; c = c + 1) {
            int gx = 0;
            int gy = 0;
            int k;
            for (k = 0; k < 9; k = k + 1) {
                int px = gray[(r + k / 3 - 1) * cols + c + k % 3 - 1];
                gx = gx + gxMask[k] * px;
                gy = gy + gyMask[k] * px;
            }
            if (gx < 0) { gx = -gx; }
            if (gy < 0) { gy = -gy; }
            int mag = gx + gy;
            if (mag > 255) { mag = 255; }
            edges[r * cols + c] = mag;
        }
    }
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { gray[i] = rnd(256); }
    sobel(32, 32);
    int sum = 0;
    for (i = 0; i < 1024; i = i + 1) { sum = sum + edges[i] * (1 + i % 3); }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name:       "halftone",
		Want:       3532,
		Exhaustive: true,
		Source: lcg + `
global int pic[1024];
global int bayer[16] = {0, 8, 2, 10, 12, 4, 14, 6, 3, 11, 1, 9, 15, 7, 13, 5};
global int toner[1024];

func halftone(int rows, int cols) {
    int r;
    for (r = 0; r < rows; r = r + 1) {
        int c;
        for (c = 0; c < cols; c = c + 1) {
            int threshold = bayer[(r % 4) * 4 + c % 4] * 16 + 8;
            int v = 0;
            if (pic[r * cols + c] > threshold) { v = 1; }
            toner[r * cols + c] = v;
        }
    }
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) { pic[i] = rnd(256); }
    halftone(32, 32);
    int sum = 0;
    for (i = 0; i < 1024; i = i + 1) { sum = sum + toner[i] * (1 + i % 13); }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "viterbi",
		Want: 481,
		Source: lcg + `
global int pathMetric[64];
global int newMetric[64];
global int branchTable[128];
global int traceback[2048];

func initTrellis() {
    int i;
    for (i = 0; i < 64; i = i + 1) { pathMetric[i] = 1000; }
    pathMetric[0] = 0;
    for (i = 0; i < 128; i = i + 1) { branchTable[i] = (i * 37 % 4); }
}

// acsStep runs one add-compare-select stage against the received pair r.
func acsStep(int t, int r) {
    int s;
    for (s = 0; s < 64; s = s + 1) {
        int p0 = s / 2;
        int p1 = s / 2 + 32;
        int b0 = branchTable[(s * 2) % 128] ^ r;
        int b1 = branchTable[(s * 2 + 1) % 128] ^ r;
        int c0 = (b0 & 1) + (b0 >> 1 & 1);
        int c1 = (b1 & 1) + (b1 >> 1 & 1);
        int m0 = pathMetric[p0] + c0;
        int m1 = pathMetric[p1] + c1;
        if (m0 <= m1) {
            newMetric[s] = m0;
            traceback[t * 64 + s] = p0;
        } else {
            newMetric[s] = m1;
            traceback[t * 64 + s] = p1;
        }
    }
    for (s = 0; s < 64; s = s + 1) { pathMetric[s] = newMetric[s]; }
}

func main() int {
    initTrellis();
    int steps = 32;
    int t;
    for (t = 0; t < steps; t = t + 1) {
        acsStep(t, rnd(4));
    }
    // Trace back from the best final state.
    int best = 0;
    int s;
    for (s = 1; s < 64; s = s + 1) {
        if (pathMetric[s] < pathMetric[best]) { best = s; }
    }
    int sum = 0;
    for (t = steps - 1; t >= 0; t = t - 1) {
        sum = sum + best;
        best = traceback[t * 64 + best];
    }
    return (sum + pathMetric[best % 64]) % 1000003;
}`,
	})
}
