package bench

// MPEG-2 kernels: mpeg2enc's hot loop is block motion estimation (sum of
// absolute differences over a search window); mpeg2dec's is dequantization
// plus the inverse DCT with saturation via a clip table.

const mpegCommon = `
global int refFrame[1024];
global int curFrame[1024];
global int quantTable[64] = {
    8, 16, 19, 22, 26, 27, 29, 34,
    16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38,
    22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48,
    26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69,
    27, 29, 35, 38, 46, 56, 69, 83};
global int clipTable[512];

func initClip() {
    int i;
    for (i = 0; i < 512; i = i + 1) {
        int v = i - 128;
        if (v < 0) { v = 0; }
        if (v > 255) { v = 255; }
        clipTable[i] = v;
    }
}
`

func init() {
	register(Benchmark{
		Name: "mpeg2enc",
		Want: 15840,
		Source: lcg + mpegCommon + `
// sad computes the 8x8 sum of absolute differences between the current
// block at (bx,by) and the reference block displaced by (dx,dy).
func sad(int bx, int by, int dx, int dy) int {
    int acc = 0;
    int y;
    for (y = 0; y < 8; y = y + 1) {
        int x;
        for (x = 0; x < 8; x = x + 1) {
            int cy = by + y;
            int cx = bx + x;
            int ry = cy + dy;
            int rx = cx + dx;
            int d = curFrame[cy * 32 + cx] - refFrame[ry * 32 + rx];
            if (d < 0) { d = -d; }
            acc = acc + d;
        }
    }
    return acc;
}

func motionSearch(int bx, int by) int {
    int best = 1000000000;
    int bestVec = 0;
    int dy;
    for (dy = -2; dy <= 2; dy = dy + 1) {
        int dx;
        for (dx = -2; dx <= 2; dx = dx + 1) {
            if (by + dy >= 0 && by + dy + 8 <= 32 && bx + dx >= 0 && bx + dx + 8 <= 32) {
                int s = sad(bx, by, dx, dy);
                if (s < best) { best = s; bestVec = (dy + 2) * 8 + dx + 2; }
            }
        }
    }
    return best + bestVec;
}

func main() int {
    int i;
    for (i = 0; i < 1024; i = i + 1) {
        refFrame[i] = rnd(256);
        curFrame[i] = (refFrame[i] + srnd(16) + 256) % 256;
    }
    int sum = 0;
    int by;
    for (by = 0; by < 32; by = by + 8) {
        int bx;
        for (bx = 0; bx < 32; bx = bx + 8) {
            sum = sum + motionSearch(bx, by);
        }
    }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "mpeg2dec",
		Want: 21720,
		Source: lcg + mpegCommon + `
global int block[64];
global int idctTmp[64];

// idct8 runs a separable integer 8x8 inverse transform (butterfly-free
// matrix form with small fixed coefficients).
func idct8() {
    int i;
    int j;
    int k;
    for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
            int acc = 0;
            for (k = 0; k < 8; k = k + 1) {
                int c = 8 - ((j * (2 * k + 1)) % 15);
                acc = acc + block[i * 8 + k] * c;
            }
            idctTmp[i * 8 + j] = acc / 8;
        }
    }
    for (j = 0; j < 8; j = j + 1) {
        for (i = 0; i < 8; i = i + 1) {
            int acc = 0;
            for (k = 0; k < 8; k = k + 1) {
                int c = 8 - ((i * (2 * k + 1)) % 15);
                acc = acc + idctTmp[k * 8 + j] * c;
            }
            block[i * 8 + j] = acc / 64;
        }
    }
}

func main() int {
    initClip();
    int nblocks = 12;
    int sum = 0;
    int b;
    for (b = 0; b < nblocks; b = b + 1) {
        int i;
        for (i = 0; i < 64; i = i + 1) {
            int coef = srnd(32);
            block[i] = coef * quantTable[i] / 16;
        }
        idct8();
        for (i = 0; i < 64; i = i + 1) {
            int v = block[i] % 256 + 128;
            if (v < 0) { v = 0; }
            if (v > 511) { v = 511; }
            curFrame[(b * 64 + i) % 1024] = clipTable[v];
        }
    }
    int i;
    for (i = 0; i < 1024; i = i + 1) { sum = sum + curFrame[i] * (1 + i % 3); }
    return sum % 1000003;
}`,
	})
}
