package bench

// Pegwit-style public-key kernels: the originals spend their time in
// GF(2^n)-ish polynomial arithmetic and a sponge-like hash over message
// buffers. pegwitenc mixes a message with a key schedule; pegwitdec
// inverts the mixing and checks a digest.

const pegwitCommon = `
global int sbox[256];
global int keySched[32];
global int digestState[8];

func initTables(int seedMix) {
    int i;
    for (i = 0; i < 256; i = i + 1) {
        sbox[i] = (i * 167 + seedMix) % 256;
    }
    for (i = 0; i < 32; i = i + 1) {
        keySched[i] = (i * 2654435761 + seedMix * 97) % 65536;
    }
    for (i = 0; i < 8; i = i + 1) { digestState[i] = i * 1131 + 7; }
}

// gfmul is a carry-less style multiply reduced mod a fixed polynomial.
func gfmul(int a, int b) int {
    int r = 0;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        if ((b & 1) != 0) { r = r ^ a; }
        b = b >> 1;
        a = a << 1;
        if ((a & 65536) != 0) { a = a ^ 69643; }
    }
    return r & 65535;
}

func absorb(int w) {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        digestState[i] = (digestState[i] ^ gfmul(w & 65535, keySched[(w + i) % 32])) % 65536;
        w = (w >> 3) ^ sbox[(w + i) & 255];
    }
}
`

func init() {
	register(Benchmark{
		Name: "pegwitenc",
		Want: 336808,
		Source: lcg + pegwitCommon + `
func main() int {
    initTables(17);
    int n = 256;
    int *msg;
    int *ct;
    msg = malloc(n * 8);
    ct = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { msg[i] = rnd(65536); }
    for (i = 0; i < n; i = i + 1) {
        int k = keySched[i % 32];
        int x = gfmul(msg[i], k ^ (i & 255));
        x = x ^ sbox[x & 255] * 256;
        ct[i] = x % 65536;
        absorb(x);
    }
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + ct[i] * (1 + i % 3); }
    for (i = 0; i < 8; i = i + 1) { sum = sum + digestState[i]; }
    return sum % 1000003;
}`,
	})

	register(Benchmark{
		Name: "pegwitdec",
		Want: 772862,
		Source: lcg + pegwitCommon + `
// gfinvish applies the mixing in reverse order (structurally the inverse
// path; exact algebraic inversion is not needed for the kernel shape).
func unmix(int x, int k, int i) int {
    int y = x ^ sbox[x & 255] * 256;
    return gfmul(y % 65536, k ^ (i & 255));
}

func main() int {
    initTables(29);
    int n = 256;
    int *ct;
    int *pt;
    ct = malloc(n * 8);
    pt = malloc(n * 8);
    int i;
    for (i = 0; i < n; i = i + 1) { ct[i] = rnd(65536); }
    for (i = 0; i < n; i = i + 1) {
        pt[i] = unmix(ct[i], keySched[i % 32], i);
        absorb(pt[i]);
    }
    int sum = 0;
    for (i = 0; i < n; i = i + 1) { sum = sum + pt[i] % 509; }
    for (i = 0; i < 8; i = i + 1) { sum = sum + digestState[i] * 3; }
    return sum % 1000003;
}`,
	})
}
