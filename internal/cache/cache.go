// Package cache implements the paper's stated future work (§5): evaluating
// data partitioning when the per-cluster memories are caches rather than
// perfect scratchpads. It provides a set-associative LRU cache simulator,
// memory-trace collection through the interpreter, and an experiment that
// compares a data partition's per-cluster miss behavior against a unified
// cache of the combined capacity.
//
// The model: each access goes to the cache of the accessed object's home
// cluster (the address space is partitioned, so there is no coherence);
// the unified baseline sends every access to one cache with the combined
// size and a port per cluster. Misses add a fixed penalty on top of the
// scheduled cycle count.
//
// Not to be confused with package memo, the compile-time memoization
// cache the evaluation engine uses to avoid recomputing partition and
// schedule results: this package simulates *hardware* caches of the
// machine being modeled; internal/memo caches *compiler* results.
package cache

import (
	"fmt"

	"mcpart/internal/gdp"
	"mcpart/internal/interp"
	"mcpart/internal/ir"
)

// Config describes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int // ways; 1 = direct-mapped
	// MissPenalty is the extra cycles per miss.
	MissPenalty int
}

// Validate checks the geometry is usable.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d", c.Assoc)
	}
	if c.SizeBytes < c.LineBytes*c.Assoc {
		return fmt.Errorf("cache: size %d too small for %d-way %d-byte lines",
			c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	tags     []uint64 // sets * assoc entries
	age      []uint64 // LRU stamps
	valid    []bool
	clock    uint64

	Hits, Misses int64
}

// New builds an empty cache; geometry must Validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	n := sets * cfg.Assoc
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lb,
		tags:     make([]uint64, n),
		age:      make([]uint64, n),
		valid:    make([]bool, n),
	}, nil
}

// Access simulates one access and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Assoc
	victim, oldest := base, c.age[base]
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.age[i] = c.clock
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim, oldest = i, 0
		} else if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.age[victim] = c.clock
	c.Misses++
	return false
}

// Access is one traced memory reference.
type Access struct {
	Obj   int   // object ID
	Inst  int64 // allocation instance
	Off   int64 // byte offset within the instance
	Store bool
}

// Trace is a whole-program memory reference stream.
type Trace []Access

// Collect executes the module and records every load and store.
func Collect(m *ir.Module, maxSteps int64) (Trace, error) {
	var tr Trace
	in := interp.New(m, interp.Options{
		MaxSteps: maxSteps,
		TraceMem: func(objID int, inst, off int64, isStore bool) {
			tr = append(tr, Access{Obj: objID, Inst: inst, Off: off, Store: isStore})
		},
	})
	if _, err := in.RunMain(); err != nil {
		return nil, err
	}
	return tr, nil
}

// addr flattens an access into a synthetic address: each allocation
// instance occupies its own 4 GiB region, so distinct objects never alias.
func (a Access) addr() uint64 {
	return uint64(a.Inst)<<32 | (uint64(a.Off) & 0xffffffff)
}

// PartitionedResult is the outcome of replaying a trace against
// per-cluster caches under a data map.
type PartitionedResult struct {
	Accesses  []int64 // per cluster
	Misses    []int64 // per cluster
	ExtraCyc  int64   // Σ misses * penalty
	TotalMiss int64
}

// ReplayPartitioned replays the trace against one cache per cluster; each
// access goes to its object's home cluster.
func ReplayPartitioned(tr Trace, dm gdp.DataMap, k int, cfg Config) (*PartitionedResult, error) {
	caches := make([]*Cache, k)
	for i := range caches {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	res := &PartitionedResult{
		Accesses: make([]int64, k),
		Misses:   make([]int64, k),
	}
	for _, a := range tr {
		cl := dm[a.Obj]
		res.Accesses[cl]++
		if !caches[cl].Access(a.addr()) {
			res.Misses[cl]++
		}
	}
	for _, m := range res.Misses {
		res.TotalMiss += m
		res.ExtraCyc += m * int64(cfg.MissPenalty)
	}
	return res, nil
}

// ReplayUnified replays the trace against a single cache with k times the
// per-cluster capacity (the shared-memory baseline).
func ReplayUnified(tr Trace, k int, cfg Config) (*PartitionedResult, error) {
	big := cfg
	big.SizeBytes *= k
	c, err := New(big)
	if err != nil {
		return nil, err
	}
	res := &PartitionedResult{Accesses: make([]int64, 1), Misses: make([]int64, 1)}
	for _, a := range tr {
		res.Accesses[0]++
		if !c.Access(a.addr()) {
			res.Misses[0]++
		}
	}
	res.TotalMiss = res.Misses[0]
	res.ExtraCyc = res.TotalMiss * int64(cfg.MissPenalty)
	return res, nil
}

// MissRate is misses per access over the whole result.
func (r *PartitionedResult) MissRate() float64 {
	var acc int64
	for _, a := range r.Accesses {
		acc += a
	}
	if acc == 0 {
		return 0
	}
	return float64(r.TotalMiss) / float64(acc)
}
