package cache

import (
	"testing"
	"testing/quick"

	"mcpart/internal/gdp"
	"mcpart/internal/mclang"
	"mcpart/internal/pointsto"
)

func TestConfigValidation(t *testing.T) {
	good := Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2, MissPenalty: 20}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 24, Assoc: 2},     // non-power-of-two line
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0},     // zero ways
		{SizeBytes: 16, LineBytes: 32, Assoc: 1},       // size < one line
		{SizeBytes: 96 * 32, LineBytes: 32, Assoc: 32}, // 3 sets
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestDirectMappedBehavior(t *testing.T) {
	// 4 sets x 1 way x 16-byte lines = 64 bytes.
	c, err := New(Config{SizeBytes: 64, LineBytes: 16, Assoc: 1, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(8) {
		t.Error("same line should hit")
	}
	if c.Access(64) { // maps to set 0, evicts line 0
		t.Error("conflicting line should miss")
	}
	if c.Access(0) {
		t.Error("original line was evicted; should miss")
	}
	if c.Hits != 1 || c.Misses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", c.Hits, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 1 set x 2 ways x 16-byte lines.
	c, err := New(Config{SizeBytes: 32, LineBytes: 16, Assoc: 2, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)  // miss, way A
	c.Access(16) // miss, way B
	c.Access(0)  // hit, A becomes MRU
	c.Access(32) // miss, evicts LRU = line 16
	if !c.Access(0) {
		t.Error("MRU line evicted instead of LRU")
	}
	if c.Access(16) {
		t.Error("LRU line should have been evicted")
	}
}

// Property: hit count never exceeds accesses, and a cache of the same
// geometry is deterministic.
func TestCacheDeterministicQuick(t *testing.T) {
	cfg := Config{SizeBytes: 512, LineBytes: 32, Assoc: 2, MissPenalty: 5}
	if err := quick.Check(func(addrs []uint16) bool {
		c1, _ := New(cfg)
		c2, _ := New(cfg)
		for _, a := range addrs {
			h1 := c1.Access(uint64(a))
			h2 := c2.Access(uint64(a))
			if h1 != h2 {
				return false
			}
		}
		return c1.Hits+c1.Misses == int64(len(addrs))
	}, nil); err != nil {
		t.Error(err)
	}
}

// Property: a fully-associative cache of size >= footprint has only cold
// misses (one per distinct line).
func TestColdMissesOnlyQuick(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		cfg := Config{SizeBytes: 4096, LineBytes: 16, Assoc: 256, MissPenalty: 1}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		lines := map[uint64]bool{}
		for _, r := range raw {
			addr := uint64(r) * 8
			c.Access(addr)
			lines[addr/16] = true
		}
		return c.Misses == int64(len(lines))
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

const streamSrc = `
global int a[512];
global int b[512];
func main() int {
    int i;
    int s = 0;
    for (i = 0; i < 512; i = i + 1) { a[i] = i; }
    for (i = 0; i < 512; i = i + 1) { b[i] = a[i] * 2; }
    for (i = 0; i < 512; i = i + 1) { s = s + a[i] + b[i]; }
    return s;
}`

func TestCollectTrace(t *testing.T) {
	mod, err := mclang.Compile(streamSrc, "t")
	if err != nil {
		t.Fatal(err)
	}
	pointsto.Analyze(mod)
	tr, err := Collect(mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 512 stores + (512 loads + 512 stores) + 1024 loads = 2560 accesses.
	if len(tr) != 2560 {
		t.Fatalf("trace has %d accesses, want 2560", len(tr))
	}
	stores := 0
	for _, a := range tr {
		if a.Store {
			stores++
		}
	}
	if stores != 1024 {
		t.Errorf("stores = %d, want 1024", stores)
	}
}

func TestPartitionedVsUnifiedReplay(t *testing.T) {
	mod, err := mclang.Compile(streamSrc, "t")
	if err != nil {
		t.Fatal(err)
	}
	pointsto.Analyze(mod)
	tr, err := Collect(mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2, MissPenalty: 20}
	// Split a|b: each array streams through its own 2 KiB cache.
	split, err := ReplayPartitioned(tr, gdp.DataMap{0, 1}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Colocated: both arrays fight over cluster 0's cache.
	colo, err := ReplayPartitioned(tr, gdp.DataMap{0, 0}, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if split.TotalMiss > colo.TotalMiss {
		t.Errorf("balanced placement missed more (%d) than colocated (%d)",
			split.TotalMiss, colo.TotalMiss)
	}
	uni, err := ReplayUnified(tr, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The unified cache has the combined capacity, so it cannot do worse
	// than the colocated single small cache.
	if uni.TotalMiss > colo.TotalMiss {
		t.Errorf("unified (%d misses) worse than colocated small cache (%d)",
			uni.TotalMiss, colo.TotalMiss)
	}
	if split.MissRate() < 0 || split.MissRate() > 1 {
		t.Errorf("miss rate %v out of range", split.MissRate())
	}
	if split.ExtraCyc != split.TotalMiss*20 {
		t.Errorf("penalty accounting wrong")
	}
}
