package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mcpart/internal/obs"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	key := []byte("k1")
	val := []byte("hello world")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	s.Put(key, val)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = (%q, %v), want (%q, true)", got, ok, val)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Entries != 50 || st.CorruptSkipped != 0 {
		t.Fatalf("reopened stats = %+v, want 50 entries, 0 corrupt", st)
	}
	for i := 0; i < 50; i++ {
		got, ok := s2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key-%d = (%q, %v) after reopen", i, got, ok)
		}
	}
}

// TestSupersedingPutLastWins pins the append-only update path: the index
// keeps the newest record for a key after MarkCorrupt forces a rewrite,
// both live and across a reopen.
func TestSupersedingPutLastWins(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	key := []byte("k")
	s.Put(key, []byte("old"))
	// A plain duplicate Put is a no-op (the value under a key is
	// canonical)...
	s.Put(key, []byte("ignored"))
	if got, _ := s.Get(key); string(got) != "old" {
		t.Fatalf("duplicate Put replaced value: %q", got)
	}
	// ...but after the payload is marked corrupt, the next Put appends a
	// superseding record.
	s.MarkCorrupt(key)
	s.Put(key, []byte("new"))
	if got, ok := s.Get(key); !ok || string(got) != "new" {
		t.Fatalf("superseding Put: (%q, %v)", got, ok)
	}
	s.Close()

	s2 := open(t, dir, Options{})
	defer s2.Close()
	if got, ok := s2.Get(key); !ok || string(got) != "new" {
		t.Fatalf("last-wins after reopen: (%q, %v)", got, ok)
	}
}

func TestMaxBytesShedsWrites(t *testing.T) {
	// Small cap: header (8) + one ~116-byte record fits, a second does not.
	s := open(t, t.TempDir(), Options{MaxBytes: 160})
	defer s.Close()
	val := make([]byte, 100)
	s.Put([]byte("a"), val)
	s.Put([]byte("b"), val)
	st := s.Stats()
	if st.Writes != 1 || st.DroppedFull != 1 {
		t.Fatalf("stats = %+v, want 1 write / 1 dropped", st)
	}
	if _, ok := s.Get([]byte("a")); !ok {
		t.Fatal("first record must be readable")
	}
	if _, ok := s.Get([]byte("b")); ok {
		t.Fatal("shed record must miss")
	}
}

// TestGetFromPending pins that write-behind records are readable before
// any flush (the buffer is part of the logical log).
func TestGetFromPending(t *testing.T) {
	s := open(t, t.TempDir(), Options{FlushBytes: 1 << 20})
	defer s.Close()
	s.Put([]byte("k"), []byte("v"))
	fi, err := os.Stat(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != headerSize {
		t.Fatalf("record flushed eagerly (file %d bytes); want write-behind", fi.Size())
	}
	if got, ok := s.Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("pending Get = (%q, %v)", got, ok)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fi, _ = os.Stat(s.Path())
	if fi.Size() <= headerSize {
		t.Fatal("Flush did not write the record")
	}
}

// TestAutoFlushBeyondThreshold pins the write-behind trigger.
func TestAutoFlushBeyondThreshold(t *testing.T) {
	s := open(t, t.TempDir(), Options{FlushBytes: 64})
	defer s.Close()
	s.Put([]byte("key-long-enough"), make([]byte, 64))
	fi, err := os.Stat(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == headerSize {
		t.Fatal("pending buffer beyond FlushBytes must flush")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), Options{FlushBytes: 128})
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte(fmt.Sprintf("k-%d", i%20))
				val := []byte(fmt.Sprintf("v-%d", i%20))
				if i%2 == 0 {
					s.Put(key, val)
				} else if got, ok := s.Get(key); ok && !bytes.Equal(got, val) {
					t.Errorf("key %q returned %q", key, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.CorruptSkipped != 0 {
		t.Fatalf("corruption under concurrency: %+v", st)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	s.Put([]byte("k"), []byte("v"))
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("nil store must miss")
	}
	s.MarkCorrupt([]byte("k"))
	s.SetObserver(nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Stats() != (Stats{}) {
		t.Fatal("nil stats must be zero")
	}
	if s.Path() != "" {
		t.Fatal("nil path must be empty")
	}
}

func TestObserverMirrors(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	o := obs.New(obs.NewRegistry(), nil, nil)
	s.SetObserver(o)
	s.Put([]byte("k"), []byte("v"))
	s.Get([]byte("k"))
	s.Get([]byte("absent"))
	s.MarkCorrupt([]byte("k"))
	snap := o.Registry().Snapshot()
	for name, want := range map[string]int64{
		"store_hits":            1,
		"store_misses":          1,
		"store_writes":          1,
		"store_corrupt_skipped": 1,
	} {
		if got := snap.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Value("store_bytes") <= 0 {
		t.Error("store_bytes not mirrored")
	}
}

func TestSharedRegistry(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("OpenShared must return one handle per dir")
	}
	s1.Put([]byte("k"), []byte("v"))
	if st, ok := SharedStats(dir); !ok || st.Writes != 1 {
		t.Fatalf("SharedStats = (%+v, %v)", st, ok)
	}
	if err := FlushShared(dir); err != nil {
		t.Fatal(err)
	}
	if err := DropShared(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := SharedStats(dir); ok {
		t.Fatal("stats must be gone after DropShared")
	}
	// Reopen rebuilds the index from disk.
	s3, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer DropShared(dir)
	if s3 == s1 {
		t.Fatal("DropShared must force a fresh handle")
	}
	if got, ok := s3.Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("reopened shared Get = (%q, %v)", got, ok)
	}
	if _, ok := SharedStats(filepath.Join(dir, "other")); ok {
		t.Fatal("unknown dir must report no stats")
	}
}
