package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fill writes n records and closes the store, returning the log path and
// the (key, value) pairs written.
func fill(t *testing.T, dir string, n int) (string, [][2][]byte) {
	t.Helper()
	s := open(t, dir, Options{})
	var pairs [][2][]byte
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		v := []byte(fmt.Sprintf("value-%02d-payload", i))
		s.Put(k, v)
		pairs = append(pairs, [2][]byte{k, v})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, LogName), pairs
}

// TestTruncatedTailSkipped pins the crash-mid-flush path: a record cut
// short at the end of the log is dropped (counted corrupt), every earlier
// record still hits, and the log keeps accepting appends.
func TestTruncatedTailSkipped(t *testing.T) {
	dir := t.TempDir()
	path, pairs := fill(t, dir, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.CorruptSkipped != 1 || st.Entries != 4 {
		t.Fatalf("stats = %+v, want 1 corrupt / 4 entries", st)
	}
	for _, kv := range pairs[:4] {
		if got, ok := s.Get(kv[0]); !ok || !bytes.Equal(got, kv[1]) {
			t.Fatalf("surviving record %q = (%q, %v)", kv[0], got, ok)
		}
	}
	if _, ok := s.Get(pairs[4][0]); ok {
		t.Fatal("truncated record must miss (degrade to recompute)")
	}
	// The truncated tail was cut at a record boundary, so appends heal it.
	s.Put(pairs[4][0], pairs[4][1])
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(pairs[4][0]); !ok || !bytes.Equal(got, pairs[4][1]) {
		t.Fatalf("healed record = (%q, %v)", got, ok)
	}
}

// TestFlippedByteMidRecordSkipped pins single-record corruption: flipping
// one byte inside an interior record's value fails that record's CRC; only
// that record is skipped and the scan resumes at the next frame.
func TestFlippedByteMidRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	path, pairs := fill(t, dir, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Record 2's value region: skip header + 2 records, then its frame
	// header + key.
	recLen := recHeaderSize + len(pairs[0][0]) + len(pairs[0][1]) + 4
	off := headerSize + 2*recLen + recHeaderSize + len(pairs[2][0]) + 3
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.CorruptSkipped != 1 || st.Entries != 4 {
		t.Fatalf("stats = %+v, want 1 corrupt / 4 entries", st)
	}
	for i, kv := range pairs {
		got, ok := s.Get(kv[0])
		if i == 2 {
			if ok {
				t.Fatal("flipped record must miss")
			}
			continue
		}
		if !ok || !bytes.Equal(got, kv[1]) {
			t.Fatalf("record %d = (%q, %v), want (%q, true)", i, got, ok, kv[1])
		}
	}
}

// TestWrongMagicResets pins the header check: a log whose magic is not
// ours is unusable and degrades to a cold (reset) cache.
func TestWrongMagicResets(t *testing.T) {
	dir := t.TempDir()
	path, _ := fill(t, dir, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[:4], "NOPE")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.CorruptSkipped != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt / 0 entries (cold)", st)
	}
	// The reset log works like a fresh one.
	s.Put([]byte("k"), []byte("v"))
	if got, ok := s.Get([]byte("k")); !ok || string(got) != "v" {
		t.Fatalf("post-reset Get = (%q, %v)", got, ok)
	}
}

// TestWrongVersionResets pins the format-generation check: a log written
// by a different FormatVersion degrades to a cold cache, never a misread.
func TestWrongVersionResets(t *testing.T) {
	dir := t.TempDir()
	path, _ := fill(t, dir, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[4:8], FormatVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.CorruptSkipped != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt / 0 entries (cold)", st)
	}
}

// TestCorruptFrameHeaderTruncatesTail pins the unresyncable case: a record
// whose frame magic is destroyed makes the rest of the log untrustworthy,
// so the scan stops there — earlier records survive, later ones degrade to
// recompute.
func TestCorruptFrameHeaderTruncatesTail(t *testing.T) {
	dir := t.TempDir()
	path, pairs := fill(t, dir, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := recHeaderSize + len(pairs[0][0]) + len(pairs[0][1]) + 4
	off := headerSize + 2*recLen // record 2's frame magic
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, Options{})
	defer s.Close()
	st := s.Stats()
	if st.CorruptSkipped != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 corrupt / 2 entries", st)
	}
	for _, kv := range pairs[:2] {
		if got, ok := s.Get(kv[0]); !ok || !bytes.Equal(got, kv[1]) {
			t.Fatalf("pre-corruption record %q = (%q, %v)", kv[0], got, ok)
		}
	}
	for _, kv := range pairs[2:] {
		if _, ok := s.Get(kv[0]); ok {
			t.Fatalf("post-corruption record %q must miss", kv[0])
		}
	}
}

// TestGarbageFileResets pins that a log shorter than its header (or pure
// garbage) starts cold instead of failing Open.
func TestGarbageFileResets(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.CorruptSkipped != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt / 0 entries", st)
	}
}

// TestMarkCorruptDropsEntry pins the higher-level decode-failure path.
func TestMarkCorruptDropsEntry(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	defer s.Close()
	s.Put([]byte("k"), []byte("undecodable"))
	s.MarkCorrupt([]byte("k"))
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("marked-corrupt entry must miss")
	}
	if st := s.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}
