package store

import (
	"path/filepath"
	"sync"
)

// The shared registry hands out one Store per cache directory per process.
// Everything that names a directory — eval.Options.CacheDir on any number
// of concurrently compiled programs, the cmd tools' -cachedir flag —
// funnels through here, so one process never holds two handles (and two
// indexes) on the same log.
var (
	sharedMu sync.Mutex
	shared   = map[string]*Store{}
)

func sharedKey(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return filepath.Clean(dir)
}

// OpenShared returns the process-wide Store for dir, opening the log and
// rebuilding its index on first use. Later calls for the same directory
// return the same handle and ignore opts (the first opener's options
// stick). Open errors are not cached: a failed open is retried by the next
// call.
func OpenShared(dir string, opts Options) (*Store, error) {
	key := sharedKey(dir)
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if s, ok := shared[key]; ok {
		return s, nil
	}
	s, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	shared[key] = s
	return s, nil
}

// SharedStats reports the counters of dir's shared handle; ok is false
// when no shared store for dir is open in this process.
func SharedStats(dir string) (Stats, bool) {
	sharedMu.Lock()
	s, ok := shared[sharedKey(dir)]
	sharedMu.Unlock()
	if !ok {
		return Stats{}, false
	}
	return s.Stats(), true
}

// FlushShared flushes dir's shared handle (a no-op when none is open).
// The cmd tools call this before exiting so write-behind records land.
func FlushShared(dir string) error {
	sharedMu.Lock()
	s, ok := shared[sharedKey(dir)]
	sharedMu.Unlock()
	if !ok {
		return nil
	}
	return s.Flush()
}

// DropShared flushes, closes, and forgets dir's shared handle, so the next
// OpenShared reopens the log and rebuilds the index from disk. This is how
// tests and the warm-restart benchmark simulate a process restart without
// forking.
func DropShared(dir string) error {
	key := sharedKey(dir)
	sharedMu.Lock()
	s, ok := shared[key]
	delete(shared, key)
	sharedMu.Unlock()
	if !ok {
		return nil
	}
	return s.Close()
}
