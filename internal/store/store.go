// Package store is the persistent, content-addressed artifact cache
// behind the memoization engine (DESIGN.md §12): an append-only on-disk
// record log plus an in-memory index rebuilt on open. It is the disk tier
// that survives process restarts — a warm `gdpbench` re-run or a restarted
// service pays index-rebuild and deserialization cost instead of the full
// exhaustive-search cost.
//
// The contract mirrors internal/memo's: the store can change wall time and
// hit counters, never values. Three mechanisms enforce that:
//
//   - content addressing: the index key is SHA-256 over the full canonical
//     key material (format version × module hash × machine/options keys ×
//     computation key), so two records collide only if their inputs are
//     byte-identical;
//   - re-keying on read: every record stores its complete key bytes, and
//     Get compares them against the requested key before returning the
//     value — a hash collision or a corrupt record degrades to a miss,
//     never to a wrong value;
//   - corruption is never fatal: records carry a magic number, explicit
//     lengths, and a CRC32. A truncated tail, a flipped byte, a wrong
//     magic, or a wrong format version makes Open (or Get) skip the bad
//     bytes, count them in CorruptSkipped, and fall back to a cold cache.
//
// Writes are write-behind: Put appends to an in-memory pending buffer that
// Flush (explicit, or automatic beyond Options.FlushBytes) appends to the
// log file. The log is append-only — a superseding Put for an existing key
// appends a fresh record and the index keeps the newest offset (last wins
// on rebuild), which is how a record that went corrupt on disk heals after
// the next recompute.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"mcpart/internal/defaults"
	"mcpart/internal/obs"
)

// Format identity. Bump FormatVersion whenever the record framing or any
// value encoding changes shape: version is part of both the file header
// and the hashed key material, so old logs simply stop hitting.
const (
	// Magic opens every artifact log file.
	Magic = "MCPS"
	// FormatVersion is the current log format generation.
	FormatVersion = 1
	// recMagic opens every record frame.
	recMagic uint32 = 0xA57C0DE1
	// headerSize is len(Magic) + 4 version bytes.
	headerSize = 8
	// recHeaderSize is magic + keyLen + valLen.
	recHeaderSize = 12
	// maxComponentLen bounds a single key or value; anything larger in a
	// frame header is treated as corruption, which keeps a flipped length
	// byte from triggering a giant allocation.
	maxComponentLen = 1 << 28
)

// Defaults for the Options knobs (the usual non-positive → default
// sentinel, see internal/defaults).
const (
	// DefaultMaxBytes caps the log at 1 GiB; the tools' -cachemaxbytes
	// flag overrides it.
	DefaultMaxBytes = 1 << 30
	// DefaultFlushBytes is the pending-buffer size beyond which Put
	// triggers a write-behind flush to the log file.
	DefaultFlushBytes = 256 << 10
)

// LogName is the artifact log's file name inside the cache directory.
const LogName = "artifacts.mcs"

// Options tunes a Store. The zero value selects every default.
type Options struct {
	// MaxBytes caps the log file (durable plus pending bytes); when a Put
	// would grow past it, the write is dropped — the log is append-only,
	// so the bound sheds new work instead of evicting old. Non-positive
	// selects DefaultMaxBytes.
	MaxBytes int64
	// FlushBytes is the write-behind threshold: Put flushes the pending
	// buffer to disk once it grows past this. Non-positive selects
	// DefaultFlushBytes.
	FlushBytes int64
}

func (o Options) maxBytes() int64   { return defaults.Int64(o.MaxBytes, DefaultMaxBytes) }
func (o Options) flushBytes() int64 { return defaults.Int64(o.FlushBytes, DefaultFlushBytes) }

// Store is an append-only, content-addressed artifact log with an
// in-memory index. A nil *Store is accepted by every method and behaves as
// a cache that never hits and drops every write, so callers can thread an
// optional store without branching. All methods are safe for concurrent
// use.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	// size is the durable log length; pending holds appended-but-unflushed
	// records at logical offsets [size, size+len(pending)).
	size    int64
	pending []byte
	index   map[[sha256.Size]byte]recRef // key hash -> logical record frame

	// liveBytes is the total frame length of indexed (live) records; the
	// difference between the log length and headerSize+liveBytes is the
	// shadowed garbage Compact can reclaim (superseded last-wins records,
	// CRC-failed frames, MarkCorrupt victims).
	liveBytes int64

	// ioErr latches the first write failure: the store keeps serving reads
	// but stops accepting writes (a broken disk degrades the cache, never
	// the pipeline).
	ioErr error

	hits, misses, writes, corrupt, dropped uint64
	bytesWritten                           uint64
	compactions, bytesReclaimed            uint64

	// Observer mirrors (nil defaults are no-ops; see SetObserver).
	// observer keeps the handle itself so Compact can resolve its counters
	// lazily — compaction metrics exist only once a compaction ran, which
	// keeps them out of the CLI tools' golden metric outputs.
	oHits, oMisses, oWrites, oCorrupt, oBytes *obs.Counter
	observer                                  *obs.Observer
}

// recRef locates one live record: its logical frame offset and full frame
// length (header + key + value + CRC).
type recRef struct {
	off    int64
	length int64
}

// Open opens (creating if needed) the artifact log in dir and rebuilds the
// index by scanning every record. Corrupt or truncated records are counted
// and skipped, never fatal: the worst corruption degrades to an empty
// (cold) cache. The one hard failure mode is the filesystem itself —
// an unreadable directory or uncreatable file returns an error.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LogName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A leftover compaction temp file means a crash mid-compaction: the
	// rename never happened, so the main log is intact and the temp is
	// garbage. Removing it is the whole recovery story.
	os.Remove(path + compactSuffix)
	s := &Store{f: f, path: path, opts: opts, index: make(map[[sha256.Size]byte]recRef)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load validates the header and scans the record log, rebuilding the
// index. It truncates the logical end of the log at the first unparseable
// frame so subsequent appends keep the log well-formed.
func (s *Store) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fileSize := fi.Size()
	if fileSize < headerSize {
		// New (or hopelessly short) file: start fresh.
		if fileSize != 0 {
			s.corrupt++
		}
		return s.reset()
	}
	var hdr [headerSize]byte
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if string(hdr[:4]) != Magic || binary.LittleEndian.Uint32(hdr[4:]) != FormatVersion {
		// Wrong magic or a different format generation: the whole log is
		// unusable for this build. Degrade to a cold cache.
		s.corrupt++
		return s.reset()
	}
	off := int64(headerSize)
	for off+recHeaderSize <= fileSize {
		var rh [recHeaderSize]byte
		if _, err := s.f.ReadAt(rh[:], off); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		keyLen := int64(binary.LittleEndian.Uint32(rh[4:8]))
		valLen := int64(binary.LittleEndian.Uint32(rh[8:12]))
		if binary.LittleEndian.Uint32(rh[0:4]) != recMagic ||
			keyLen == 0 || keyLen > maxComponentLen || valLen > maxComponentLen {
			// Unparseable frame: the rest of the log cannot be trusted.
			s.corrupt++
			return s.truncate(off)
		}
		end := off + recHeaderSize + keyLen + valLen + 4
		if end > fileSize {
			// Truncated tail (a crash mid-flush): drop the partial record.
			s.corrupt++
			return s.truncate(off)
		}
		rec := make([]byte, end-off)
		if _, err := s.f.ReadAt(rec, off); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		body := rec[:len(rec)-4]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rec[len(rec)-4:]) {
			// Flipped byte mid-record: skip just this record — the frame
			// lengths still locate the next one. (If the flipped byte was
			// a length, the next frame's magic check catches it above.)
			s.corrupt++
			off = end
			continue
		}
		key := body[recHeaderSize : recHeaderSize+keyLen]
		h := sha256.Sum256(key)
		if old, ok := s.index[h]; ok {
			// Last record for a key wins; the superseded one is shadow.
			s.liveBytes -= old.length
		}
		s.index[h] = recRef{off: off, length: end - off}
		s.liveBytes += end - off
		off = end
	}
	if off < fileSize {
		// Trailing garbage shorter than a frame header.
		s.corrupt++
		return s.truncate(off)
	}
	s.size = fileSize
	return nil
}

// reset discards the log contents and writes a fresh header (corruption
// degrade path; the caller already counted the corruption).
func (s *Store) reset() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], FormatVersion)
	if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = headerSize
	return nil
}

// truncate cuts the log at off, dropping an unparseable tail so appends
// resume from a well-formed boundary.
func (s *Store) truncate(off int64) error {
	if err := s.f.Truncate(off); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = off
	return nil
}

// SetObserver mirrors the store's counters into o's registry (metrics
// store_hits, store_misses, store_writes, store_corrupt_skipped,
// store_bytes) from this call on. A nil observer detaches. Safe to call
// concurrently; last writer wins.
func (s *Store) SetObserver(o *obs.Observer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.oHits = o.Counter("store_hits")
	s.oMisses = o.Counter("store_misses")
	s.oWrites = o.Counter("store_writes")
	s.oCorrupt = o.Counter("store_corrupt_skipped")
	s.oBytes = o.Counter("store_bytes")
	s.observer = o
	s.mu.Unlock()
}

// Get returns the value stored under key. Every read re-validates the
// record — frame magic, lengths, CRC, and a byte compare of the stored key
// against the requested key — so a corrupt record or a hash collision is a
// counted miss, never a wrong value.
func (s *Store) Get(key []byte) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	h := sha256.Sum256(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.index[h]
	if !ok {
		s.misses++
		s.oMisses.Add(1)
		return nil, false
	}
	val, ok := s.readRecord(ref.off, key)
	if !ok {
		// readRecord counted the corruption; drop the entry so the next
		// recompute's Put can heal it.
		s.dropRef(h)
		s.misses++
		s.oMisses.Add(1)
		return nil, false
	}
	s.hits++
	s.oHits.Add(1)
	return val, true
}

// readRecord loads and validates the record at logical offset off,
// returning its value bytes. Caller holds s.mu.
func (s *Store) readRecord(off int64, key []byte) ([]byte, bool) {
	read := func(p []byte, at int64) bool {
		if at >= s.size {
			// Pending (write-behind) region.
			i := at - s.size
			if i+int64(len(p)) > int64(len(s.pending)) {
				return false
			}
			copy(p, s.pending[i:])
			return true
		}
		if at+int64(len(p)) > s.size {
			return false
		}
		_, err := s.f.ReadAt(p, at)
		return err == nil
	}
	var rh [recHeaderSize]byte
	if !read(rh[:], off) {
		s.markCorrupt()
		return nil, false
	}
	keyLen := int64(binary.LittleEndian.Uint32(rh[4:8]))
	valLen := int64(binary.LittleEndian.Uint32(rh[8:12]))
	if binary.LittleEndian.Uint32(rh[0:4]) != recMagic ||
		keyLen == 0 || keyLen > maxComponentLen || valLen > maxComponentLen {
		s.markCorrupt()
		return nil, false
	}
	rec := make([]byte, recHeaderSize+keyLen+valLen+4)
	if !read(rec, off) {
		s.markCorrupt()
		return nil, false
	}
	body := rec[:len(rec)-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rec[len(rec)-4:]) {
		s.markCorrupt()
		return nil, false
	}
	storedKey := body[recHeaderSize : recHeaderSize+keyLen]
	if string(storedKey) != string(key) {
		// SHA-256 collision or index pointing at the wrong record: the
		// re-key check turns it into a miss.
		s.markCorrupt()
		return nil, false
	}
	return body[recHeaderSize+keyLen:], true
}

func (s *Store) markCorrupt() {
	s.corrupt++
	s.oCorrupt.Add(1)
}

// dropRef removes an index entry and its live-byte accounting (the record
// bytes become shadow that Compact can reclaim). Caller holds s.mu.
func (s *Store) dropRef(h [sha256.Size]byte) {
	if ref, ok := s.index[h]; ok {
		s.liveBytes -= ref.length
		delete(s.index, h)
	}
}

// MarkCorrupt records that the value stored under key failed a
// higher-level decode (the record framing was intact but the payload was
// not usable) and drops the index entry so the next recompute overwrites
// it.
func (s *Store) MarkCorrupt(key []byte) {
	if s == nil {
		return
	}
	h := sha256.Sum256(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropRef(h)
	s.markCorrupt()
}

// Put appends a record for key to the write-behind buffer and indexes it.
// An existing entry for the same key is superseded (the log is append-only;
// the index keeps the newest offset). Writes beyond Options.MaxBytes, or
// after a write error, are dropped — the store bounds disk, it never
// fails the computation that produced the value.
func (s *Store) Put(key, val []byte) {
	if s == nil || len(key) == 0 || int64(len(key)) > maxComponentLen || int64(len(val)) > maxComponentLen {
		return
	}
	h := sha256.Sum256(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ioErr != nil {
		s.dropped++
		return
	}
	if _, ok := s.index[h]; ok {
		// The value under a key is canonical (content-addressed), so a
		// duplicate Put has nothing new to say.
		return
	}
	recLen := int64(recHeaderSize + len(key) + len(val) + 4)
	if s.size+int64(len(s.pending))+recLen > s.opts.maxBytes() {
		s.dropped++
		return
	}
	off := s.size + int64(len(s.pending))
	start := len(s.pending)
	s.pending = binary.LittleEndian.AppendUint32(s.pending, recMagic)
	s.pending = binary.LittleEndian.AppendUint32(s.pending, uint32(len(key)))
	s.pending = binary.LittleEndian.AppendUint32(s.pending, uint32(len(val)))
	s.pending = append(s.pending, key...)
	s.pending = append(s.pending, val...)
	s.pending = binary.LittleEndian.AppendUint32(s.pending, crc32.ChecksumIEEE(s.pending[start:]))
	s.index[h] = recRef{off: off, length: recLen}
	s.liveBytes += recLen
	s.writes++
	s.oWrites.Add(1)
	s.bytesWritten += uint64(recLen)
	s.oBytes.Add(recLen)
	if int64(len(s.pending)) >= s.opts.flushBytes() {
		s.flushLocked()
	}
}

// Flush appends the write-behind buffer to the log file. It returns the
// first write error the store has seen (after which writes are dropped).
func (s *Store) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return s.ioErr
}

// flushLocked appends pending bytes at s.size. Caller holds s.mu. On a
// partial write the durable size advances by what landed; the next Open's
// scanner will skip the torn record (that is what the per-record CRC and
// the truncated-tail handling are for).
func (s *Store) flushLocked() {
	if s.ioErr != nil || len(s.pending) == 0 {
		return
	}
	n, err := s.f.WriteAt(s.pending, s.size)
	s.size += int64(n)
	if err != nil {
		s.ioErr = fmt.Errorf("store: %w", err)
		// Offsets beyond s.size now point at lost bytes; drop them so
		// reads cannot touch the void.
		for h, ref := range s.index {
			if ref.off >= s.size {
				s.dropRef(h)
			}
		}
	}
	s.pending = s.pending[:0]
}

// Close flushes and closes the log file.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.flushLocked()
	err := s.ioErr
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.mu.Unlock()
	return err
}

// Stats is a point-in-time snapshot of the store counters. Like
// memo.Stats, the counts describe work saved and disk used, never results.
type Stats struct {
	// Hits counts Gets served from a validated record.
	Hits uint64
	// Misses counts Gets that found no (valid) record.
	Misses uint64
	// Writes counts records appended (including not-yet-flushed ones).
	Writes uint64
	// CorruptSkipped counts records rejected by validation: bad frame,
	// bad CRC, key mismatch, or a failed higher-level decode
	// (MarkCorrupt). Each one degraded to a recompute, never an error.
	CorruptSkipped uint64
	// DroppedFull counts writes shed by the MaxBytes bound or after a
	// write error.
	DroppedFull uint64
	// BytesWritten is the record bytes appended by this process.
	BytesWritten uint64
	// LogBytes is the current logical log length (durable + pending).
	LogBytes int64
	// ShadowBytes is the portion of LogBytes holding superseded or
	// corrupt records no index entry points at — what Compact reclaims.
	ShadowBytes int64
	// Compactions counts completed Compact runs.
	Compactions uint64
	// BytesReclaimed is the total log shrinkage across those runs.
	BytesReclaimed uint64
	// Entries is the number of indexed records.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters. A nil store reports zeroes.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:           s.hits,
		Misses:         s.misses,
		Writes:         s.writes,
		CorruptSkipped: s.corrupt,
		DroppedFull:    s.dropped,
		BytesWritten:   s.bytesWritten,
		LogBytes:       s.size + int64(len(s.pending)),
		ShadowBytes:    s.shadowLocked(),
		Compactions:    s.compactions,
		BytesReclaimed: s.bytesReclaimed,
		Entries:        len(s.index),
	}
}

// shadowLocked computes the reclaimable garbage bytes. Caller holds s.mu.
func (s *Store) shadowLocked() int64 {
	shadow := s.size + int64(len(s.pending)) - headerSize - s.liveBytes
	if shadow < 0 {
		// A fresh (or reset) log is smaller than a header only transiently;
		// clamp so callers can treat the value as a size.
		shadow = 0
	}
	return shadow
}

// Path returns the log file path.
func (s *Store) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}
