package store

import "testing"

// TestOptionsDefaults pins the repository-wide non-positive → default
// sentinel (internal/defaults) on the store's size knobs, matching every
// other Options struct in the tree.
func TestOptionsDefaults(t *testing.T) {
	if got := (Options{}).maxBytes(); got != DefaultMaxBytes {
		t.Errorf("zero MaxBytes = %d, want DefaultMaxBytes %d", got, DefaultMaxBytes)
	}
	if got := (Options{MaxBytes: -1}).maxBytes(); got != DefaultMaxBytes {
		t.Errorf("negative MaxBytes = %d, want DefaultMaxBytes", got)
	}
	if got := (Options{MaxBytes: 4096}).maxBytes(); got != 4096 {
		t.Errorf("explicit MaxBytes = %d, want 4096", got)
	}
	if got := (Options{}).flushBytes(); got != DefaultFlushBytes {
		t.Errorf("zero FlushBytes = %d, want DefaultFlushBytes %d", got, DefaultFlushBytes)
	}
	if got := (Options{FlushBytes: -3}).flushBytes(); got != DefaultFlushBytes {
		t.Errorf("negative FlushBytes = %d, want DefaultFlushBytes", got)
	}
	if got := (Options{FlushBytes: 128}).flushBytes(); got != 128 {
		t.Errorf("explicit FlushBytes = %d, want 128", got)
	}
}
