// compact.go rewrites the append-only artifact log without its shadowed
// records. The log never overwrites in place — a superseding Put, a healed
// MarkCorrupt entry, or a CRC-failed frame all leave dead bytes behind —
// which is harmless for one-shot CLI runs but grows without bound under a
// long-running daemon. Compact copies only the live (indexed) records into
// a temp file next to the log and atomically renames it over the original,
// so a crash at any point leaves either the old intact log or the new
// intact log, never a mix:
//
//   - crash before the rename: the temp file is garbage; Open removes it
//     and the old log (untouched) is loaded as usual;
//   - crash after the rename: the new log is complete and fsynced; Open
//     loads it like any other log.
//
// Compaction is a wall-time/disk optimization with the package's usual
// contract: it changes LogBytes and the counters, never values. Every
// record is CRC-verified as it is copied; one that rotted since load is
// dropped (counted corrupt), exactly as a Get would have treated it.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// compactSuffix names the temp file Compact writes next to the log. A
// leftover file with this suffix is a crash-mid-compaction remnant that
// Open deletes.
const compactSuffix = ".compact"

// Compact rewrites the log keeping only live records, reclaiming shadowed
// bytes. It flushes pending writes first, so the whole log is durable
// before the copy starts. On success it reports the bytes reclaimed; on
// failure the original log and index are left untouched (and the temp file
// removed), so a failed compaction degrades to "no compaction", never to a
// broken store. A store that has latched a write error refuses to compact.
func (s *Store) Compact() (reclaimed int64, err error) {
	if s == nil {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	if s.ioErr != nil {
		return 0, s.ioErr
	}

	// Collect live records in ascending offset order so the new log keeps
	// the original append order (deterministic output for a given index).
	type liveRec struct {
		h   [sha256.Size]byte
		ref recRef
	}
	live := make([]liveRec, 0, len(s.index))
	for h, ref := range s.index {
		live = append(live, liveRec{h: h, ref: ref})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ref.off < live[j].ref.off })

	tmpPath := s.path + compactSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: compact: %w", err)
	}
	fail := func(e error) (int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, fmt.Errorf("store: compact: %w", e)
	}

	var hdr [headerSize]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], FormatVersion)
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	newIndex := make(map[[sha256.Size]byte]recRef, len(live))
	var newLive int64
	off := int64(headerSize)
	for _, lr := range live {
		rec := make([]byte, lr.ref.length)
		if _, err := s.f.ReadAt(rec, lr.ref.off); err != nil {
			return fail(err)
		}
		if !validFrame(rec) {
			// The record rotted on disk since the index was built: drop it
			// (a Get would have missed anyway) rather than carry the
			// corruption into the new log.
			s.markCorrupt()
			continue
		}
		if _, err := tmp.WriteAt(rec, off); err != nil {
			return fail(err)
		}
		newIndex[lr.h] = recRef{off: off, length: lr.ref.length}
		newLive += lr.ref.length
		off += lr.ref.length
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// Atomic switch: rename the temp over the log while keeping the temp's
	// file handle — after the rename that handle IS the new log, so no
	// reopen race exists. The old handle (now an unlinked inode) closes.
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fail(err)
	}
	oldSize := s.size
	s.f.Close()
	s.f = tmp
	s.size = off
	s.index = newIndex
	s.liveBytes = newLive
	reclaimed = oldSize - off
	s.compactions++
	s.bytesReclaimed += uint64(reclaimed)
	s.observer.Counter("store_compactions").Add(1)
	s.observer.Counter("store_bytes_reclaimed").Add(reclaimed)
	return reclaimed, nil
}

// CompactIfShadowed compacts only when the shadowed bytes exceed minBytes
// AND the shadow fraction of the log exceeds frac, returning 0 reclaimed
// (and no error) when below threshold. This is the daemon's periodic
// trigger: cheap to call, and the double threshold keeps small or mostly
// live logs from being rewritten over and over.
func (s *Store) CompactIfShadowed(frac float64, minBytes int64) (int64, error) {
	if s == nil {
		return 0, nil
	}
	s.mu.Lock()
	shadow := s.shadowLocked()
	logBytes := s.size + int64(len(s.pending))
	s.mu.Unlock()
	if shadow < minBytes || logBytes <= 0 || float64(shadow)/float64(logBytes) < frac {
		return 0, nil
	}
	return s.Compact()
}

// validFrame re-verifies one complete record frame: magic, lengths
// consistent with the frame size, and CRC.
func validFrame(rec []byte) bool {
	if len(rec) < recHeaderSize+4 {
		return false
	}
	if binary.LittleEndian.Uint32(rec[0:4]) != recMagic {
		return false
	}
	keyLen := int64(binary.LittleEndian.Uint32(rec[4:8]))
	valLen := int64(binary.LittleEndian.Uint32(rec[8:12]))
	if keyLen == 0 || keyLen > maxComponentLen || valLen > maxComponentLen ||
		int64(len(rec)) != recHeaderSize+keyLen+valLen+4 {
		return false
	}
	body := rec[:len(rec)-4]
	return crc32.ChecksumIEEE(body) == binary.LittleEndian.Uint32(rec[len(rec)-4:])
}
