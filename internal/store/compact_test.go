package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mcpart/internal/obs"
)

// shadowedStore builds a store with n live records plus shadow bytes made
// the way a long-running daemon makes them: a record goes corrupt at a
// higher level (MarkCorrupt) and the recompute's Put heals it with a fresh
// record, leaving the old bytes dead in the log.
func shadowedStore(t *testing.T, dir string, n int) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Put(key(i), []byte(fmt.Sprintf("value-%d", i)))
	}
	// Shadow two records via the MarkCorrupt → heal cycle.
	for _, i := range []int{1, 3} {
		s.MarkCorrupt(key(i))
		s.Put(key(i), []byte(fmt.Sprintf("healed-%d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return s
}

func key(i int) []byte { return []byte(fmt.Sprintf("compact-key-%d", i)) }

// TestCompactReclaimsShadow pins the core contract: compaction shrinks the
// log by exactly the shadowed bytes, keeps every live value readable (the
// healed values, not the superseded ones), and survives a process restart.
func TestCompactReclaimsShadow(t *testing.T) {
	dir := t.TempDir()
	s := shadowedStore(t, dir, 5)

	before := s.Stats()
	if before.ShadowBytes <= 0 {
		t.Fatalf("expected shadow bytes before compaction, got %+v", before)
	}
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != before.ShadowBytes {
		t.Fatalf("reclaimed %d, want shadow %d", reclaimed, before.ShadowBytes)
	}
	after := s.Stats()
	if after.ShadowBytes != 0 || after.Compactions != 1 || after.BytesReclaimed != uint64(reclaimed) {
		t.Fatalf("post-compaction stats %+v", after)
	}
	if after.LogBytes != before.LogBytes-reclaimed {
		t.Fatalf("log %d -> %d, reclaimed %d", before.LogBytes, after.LogBytes, reclaimed)
	}
	checkLive := func(s *Store) {
		t.Helper()
		for i := 0; i < 5; i++ {
			want := fmt.Sprintf("value-%d", i)
			if i == 1 || i == 3 {
				want = fmt.Sprintf("healed-%d", i)
			}
			got, ok := s.Get(key(i))
			if !ok || !bytes.Equal(got, []byte(want)) {
				t.Fatalf("Get(%s) = %q, %v; want %q", key(i), got, ok, want)
			}
		}
	}
	checkLive(s)

	// A compacted log is a normal log: restart and read everything back.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkLive(s2)
	if st := s2.Stats(); st.CorruptSkipped != 0 || st.ShadowBytes != 0 {
		t.Fatalf("reopened compacted log reports corruption/shadow: %+v", st)
	}

	// The store keeps accepting writes after the handle swap.
	s2.Put([]byte("post-compact"), []byte("works"))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get([]byte("post-compact")); !ok || string(got) != "works" {
		t.Fatalf("write after compaction: %q, %v", got, ok)
	}
}

// TestCompactObserverMetrics pins the store_compactions /
// store_bytes_reclaimed mirrors — and that they are registered lazily
// (absent until a compaction actually runs, so CLI metric goldens are
// unaffected).
func TestCompactObserverMetrics(t *testing.T) {
	s := shadowedStore(t, t.TempDir(), 4)
	defer s.Close()
	reg := obs.NewRegistry()
	s.SetObserver(obs.New(reg, nil, nil))
	if _, ok := reg.Snapshot().Get("store_compactions"); ok {
		t.Fatal("store_compactions registered before any compaction")
	}
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Value("store_compactions"); got != 1 {
		t.Fatalf("store_compactions = %d, want 1", got)
	}
	if got := snap.Value("store_bytes_reclaimed"); got != reclaimed {
		t.Fatalf("store_bytes_reclaimed = %d, want %d", got, reclaimed)
	}
}

// TestCompactIfShadowedThreshold pins the periodic trigger's double
// threshold: no rewrite below the byte floor or the fraction, a rewrite
// above both.
func TestCompactIfShadowedThreshold(t *testing.T) {
	s := shadowedStore(t, t.TempDir(), 4)
	defer s.Close()
	shadow := s.Stats().ShadowBytes
	if shadow <= 0 {
		t.Fatal("no shadow to test with")
	}
	if n, err := s.CompactIfShadowed(0.0, shadow+1); err != nil || n != 0 {
		t.Fatalf("below byte floor: reclaimed %d, err %v", n, err)
	}
	if n, err := s.CompactIfShadowed(0.99, 1); err != nil || n != 0 {
		t.Fatalf("below fraction: reclaimed %d, err %v", n, err)
	}
	if n, err := s.CompactIfShadowed(0.01, 1); err != nil || n != shadow {
		t.Fatalf("above both: reclaimed %d, err %v, want %d", n, err, shadow)
	}
	if s.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", s.Stats().Compactions)
	}
}

// TestCrashMidCompactionRecovery simulates dying between writing the temp
// file and the rename: the next Open must ignore (and remove) the partial
// temp and serve the original log intact — compaction is atomic or absent.
func TestCrashMidCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	s := shadowedStore(t, dir, 5)
	wantShadow := s.Stats().ShadowBytes
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The "crash": a half-written temp next to the log (a valid header and
	// then torn garbage, the worst plausible remnant).
	tmp := filepath.Join(dir, LogName+compactSuffix)
	remnant := append([]byte(Magic), 1, 0, 0, 0)
	remnant = append(remnant, bytes.Repeat([]byte{0xAB}, 37)...)
	if err := os.WriteFile(tmp, remnant, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp not removed: %v", err)
	}
	st := s2.Stats()
	if st.CorruptSkipped != 0 || st.Entries != 5 || st.ShadowBytes != wantShadow {
		t.Fatalf("recovered store stats %+v, want 5 clean entries, shadow %d", st, wantShadow)
	}
	for i := 0; i < 5; i++ {
		if _, ok := s2.Get(key(i)); !ok {
			t.Fatalf("Get(%s) missed after recovery", key(i))
		}
	}
	// And the interrupted compaction can simply be retried.
	if n, err := s2.Compact(); err != nil || n != wantShadow {
		t.Fatalf("retried compaction reclaimed %d, err %v, want %d", n, err, wantShadow)
	}
}

// TestCompactDropsRottedRecord pins that a record whose bytes rotted on
// disk after the index was built is dropped (and counted corrupt) during
// the copy instead of being carried into the new log.
func TestCompactDropsRottedRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put(key(0), []byte("first"))
	s.Put(key(1), []byte("second"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's key, behind the index's back.
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("rotted record survived compaction")
	}
	if got, ok := s.Get(key(1)); !ok || string(got) != "second" {
		t.Fatalf("intact record lost: %q, %v", got, ok)
	}
	if st := s.Stats(); st.CorruptSkipped == 0 {
		t.Fatalf("rot not counted: %+v", st)
	}
}
