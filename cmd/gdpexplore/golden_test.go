package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got to testdata/<name>.golden, rewriting the file
// instead when the test binary runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./cmd/... -update` to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("output differs from %s at line %d:\n got: %q\nwant: %q\n(rerun with -update after intentional changes)", path, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s in trailing newlines", path)
}

// TestMetricsGolden pins the -metrics summary byte for byte. The mask
// sweep is pinned to -j 1 because memo hit counts depend on the order
// workers reach the shared cache; serial order is reproducible, and all
// remaining counters derive from the deterministic simulation.
func TestMetricsGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-j", "1", "-metrics"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics_fir", sb.String())
}

// TestBestMetricsGolden pins the -best output and its metric summary:
// the branch-and-bound counters are nonzero, and the sweep-enumeration
// counters report explicit zeros (the search never walks the Gray
// sequence). Deterministic at any -j: the search itself is serial and
// only the table build fans out, so -j 1 pins the memo counts too.
func TestBestMetricsGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-j", "1", "-best", "-metrics"}, &sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "best_metrics_fir", sb.String())
}
