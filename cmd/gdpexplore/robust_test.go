package main

import (
	"strings"
	"testing"
)

func TestExploreValidateFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-validate"}, &sb); err != nil {
		t.Fatalf("-validate run failed: %v", err)
	}
	if !strings.Contains(sb.String(), "best achievable") {
		t.Errorf("output missing summary:\n%s", sb.String())
	}
}

func TestExploreTimeoutAborts(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-bench", "rawcaudio", "-timeout", "1ns"}, &sb)
	if err == nil {
		t.Fatal("want deadline error under -timeout 1ns")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadline") {
		t.Errorf("error = %q, want a deadline diagnostic", msg)
	}
	if strings.ContainsRune(msg, '\n') {
		t.Errorf("diagnostic is not one line: %q", msg)
	}
}
