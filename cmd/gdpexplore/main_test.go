package main

import (
	"os"
	"strings"
	"testing"
)

func TestExploreText(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "halftone"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 9 (halftone)", "GDP chose mask", "best achievable"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExploreCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "mask,cycles,perf_vs_worst,imbalance,is_gdp,is_pmax" {
		t.Errorf("bad CSV header %q", lines[0])
	}
	// One row per mapping: 2^objects + header.
	if len(lines) < 9 {
		t.Errorf("only %d CSV lines", len(lines))
	}
	gdpRows := 0
	for _, l := range lines[1:] {
		if strings.Contains(l, "true") {
			gdpRows++
		}
	}
	if gdpRows == 0 {
		t.Error("no scheme-marked rows in CSV")
	}
}

func TestExploreErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "nope"}, &sb); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if err := run([]string{"-bench", "mpeg2dec", "-maxobjects", "2"}, &sb); err == nil {
		t.Error("accepted object count above cap")
	}
}

func TestExploreBest(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-best"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"optimal mapping mask", "cycles ", "nodes visited"} {
		if !strings.Contains(out, want) {
			t.Errorf("-best output missing %q:\n%s", want, out)
		}
	}
	// An explicit -maxobjects still wins over the raised -best default.
	if err := run([]string{"-bench", "fir", "-best", "-maxobjects", "2"}, &sb); err == nil {
		t.Error("-best ignored an explicit -maxobjects below the object count")
	}
}

func TestExploreNoDeltaMatchesDefault(t *testing.T) {
	var delta, full strings.Builder
	if err := run([]string{"-bench", "fir", "-csv"}, &delta); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "fir", "-csv", "-nodelta"}, &full); err != nil {
		t.Fatal(err)
	}
	if delta.String() != full.String() {
		t.Error("-nodelta changed the CSV output")
	}
}

func TestExploreNoMemoMatchesDefault(t *testing.T) {
	var memoed, plain strings.Builder
	if err := run([]string{"-bench", "fir", "-csv"}, &memoed); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "fir", "-csv", "-nomemo"}, &plain); err != nil {
		t.Fatal(err)
	}
	if memoed.String() != plain.String() {
		t.Error("-nomemo changed the CSV output")
	}
}

func TestExploreProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-cpuprofile", cpu, "-memprofile", mem, "-cachestats"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
