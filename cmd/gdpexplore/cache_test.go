package main

import (
	"strings"
	"testing"

	"mcpart/internal/store"
)

// TestExploreCacheDirColdWarmIdentical pins the exhaustive explorer across
// cache states: the CSV output (every mask's cycles) is byte-identical
// with no cache, a cold cache, and a warm cache after a simulated restart
// — and the warm sweep is served from disk.
func TestExploreCacheDirColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	sweep := func(extra ...string) string {
		t.Helper()
		var sb strings.Builder
		args := append([]string{"-bench", "fir", "-csv", "-j", "1"}, extra...)
		if err := run(args, &sb); err != nil {
			t.Fatalf("gdpexplore %v: %v", args, err)
		}
		return sb.String()
	}
	ref := sweep()
	if cold := sweep("-cachedir", dir); cold != ref {
		t.Errorf("cold cache changed the CSV:\n%s\nvs\n%s", cold, ref)
	}
	if err := store.DropShared(dir); err != nil {
		t.Fatal(err)
	}
	if warm := sweep("-cachedir", dir); warm != ref {
		t.Errorf("warm cache changed the CSV:\n%s\nvs\n%s", warm, ref)
	}
	st, ok := store.SharedStats(dir)
	if !ok || st.Hits == 0 {
		t.Errorf("warm sweep had no store hits: %+v (ok=%v)", st, ok)
	}
}
