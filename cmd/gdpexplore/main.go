// Command gdpexplore reproduces the paper's Figure 9 study: an exhaustive
// search over all data-object mappings of a small benchmark, reporting each
// mapping's performance (normalized to the worst mapping) and data-size
// balance, with the GDP and Profile Max choices marked. Output is a text
// scatter by default, or CSV for external plotting.
//
// Usage:
//
//	gdpexplore -bench rawcaudio -latency 5
//	gdpexplore -bench rawdaudio -latency 5 -csv > rawdaudio.csv
//	gdpexplore -bench rawcaudio -j 8       # 8 search workers
//
// -j N bounds the worker pool the exhaustive search fans mapping masks
// across; 0 (the default) means runtime.GOMAXPROCS(0). The output is
// byte-identical for every -j value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcpart"
	"mcpart/internal/eval"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdpexplore:", err)
		os.Exit(1)
	}
}

// run executes the explorer against args, writing to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gdpexplore", flag.ContinueOnError)
	var (
		benchN  = fs.String("bench", "rawcaudio", "benchmark to explore")
		latency = fs.Int("latency", 5, "intercluster move latency")
		maxObj  = fs.Int("maxobjects", 14, "refuse programs with more data objects")
		csv     = fs.Bool("csv", false, "emit CSV instead of a text scatter")
		jobs    = fs.Int("j", 0, "search worker count (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src, err := mcpart.BenchmarkSource(*benchN)
	if err != nil {
		return err
	}
	p, err := mcpart.Compile(*benchN, src)
	if err != nil {
		return err
	}
	m := mcpart.Paper2Cluster(*latency)
	ex, err := mcpart.ExhaustiveSearch(p, m, mcpart.Options{Workers: *jobs}, *maxObj)
	if err != nil {
		return err
	}

	if *csv {
		fmt.Fprintln(out, "mask,cycles,perf_vs_worst,imbalance,is_gdp,is_pmax")
		for _, pt := range ex.Points {
			fmt.Fprintf(out, "%d,%d,%.6f,%.6f,%v,%v\n",
				pt.Mask, pt.Cycles, pt.PerfVsWorst, pt.Imbalance,
				pt.Mask == ex.GDPMask, pt.Mask == ex.PMaxMask)
		}
		return nil
	}
	fmt.Fprint(out, eval.FormatFigure9(*benchN, ex))
	if g := ex.Find(ex.GDPMask); g != nil {
		fmt.Fprintf(out, "\nGDP chose mask %b: %.3fx of worst, imbalance %.2f\n",
			g.Mask, g.PerfVsWorst, g.Imbalance)
	}
	if pm := ex.Find(ex.PMaxMask); pm != nil {
		fmt.Fprintf(out, "PMax chose mask %b: %.3fx of worst, imbalance %.2f\n",
			pm.Mask, pm.PerfVsWorst, pm.Imbalance)
	}
	best := float64(ex.Worst) / float64(ex.Best)
	fmt.Fprintf(out, "best achievable: %.3fx of worst\n", best)
	return nil
}
