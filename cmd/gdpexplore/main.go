// Command gdpexplore reproduces the paper's Figure 9 study: an exhaustive
// search over all data-object mappings of a small benchmark, reporting each
// mapping's performance (normalized to the worst mapping) and data-size
// balance, with the GDP and Profile Max choices marked. Output is a text
// scatter by default, or CSV for external plotting.
//
// Usage:
//
//	gdpexplore -bench rawcaudio -latency 5
//	gdpexplore -bench rawdaudio -latency 5 -csv > rawdaudio.csv
//	gdpexplore -bench rawcaudio -j 8       # 8 search workers
//
// -j N bounds the worker pool the exhaustive search fans mapping masks
// across; 0 (the default) means runtime.GOMAXPROCS(0). The output is
// byte-identical for every -j value.
//
// Performance introspection:
//
//	gdpexplore -bench rawcaudio -cpuprofile cpu.pprof -memprofile mem.pprof
//	gdpexplore -bench rawcaudio -cachestats  # memoization hit rates
//	gdpexplore -bench rawcaudio -nomemo      # time the uncached engine
//
// The exhaustive sweep leans hard on the memoization cache (every mask
// shares per-function lock signatures with many others) and on
// complement-symmetry pruning; -nomemo disables the former for A/B
// timing, and -cachestats reports what the cache did (to stderr, so CSV
// output stays clean). The sweep itself runs as a Gray-code delta
// enumeration over per-function cost tables (DESIGN.md §13); -nodelta
// falls back to the full per-mask engine for A/B timing — the output is
// byte-identical either way.
//
// For programs with too many objects to sweep, -best runs a
// branch-and-bound search that returns only the optimal mapping (the
// same optimum the sweep's Best reports), raising the default object
// cap from 14 to 24 unless -maxobjects is given explicitly:
//
//	gdpexplore -bench rawcaudio -best
//	gdpexplore -bench rawcaudio -nodelta   # time the per-mask engine
//
// Observability (DESIGN.md §10): -metrics prints the sweep's metric
// summary (eval_masks, memo hits, FM moves, ...), -trace FILE the
// deterministic per-mask span trace as sorted JSON lines, -prom FILE
// the metrics in Prometheus text format. Traces are byte-identical at
// every -j; pin -j 1 to make the memo hit counts in -metrics
// reproducible too.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"mcpart"
	"mcpart/internal/defaults"
	"mcpart/internal/eval"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
	"mcpart/internal/profutil"
	"mcpart/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdpexplore:", err)
		os.Exit(1)
	}
}

// run executes the explorer against args, writing to out. Panics escaping
// the search are contained into errors: the tool exits with a one-line
// diagnostic, never a crash.
func run(args []string, out io.Writer) (err error) {
	defer func() {
		if pe := parallel.Recovered("gdpexplore", -1, recover()); pe != nil {
			err = pe
		}
	}()
	fs := flag.NewFlagSet("gdpexplore", flag.ContinueOnError)
	var (
		benchN   = fs.String("bench", "rawcaudio", "benchmark to explore")
		machineN = fs.String("machine", "paper2", "machine preset: paper2 | four | eight | hetero2 | ring4 | ring8 | mesh4 | mesh8 | numa4")
		latency  = fs.Int("latency", 5, "intercluster move latency")
		maxObj   = fs.Int("maxobjects", defaults.DefaultMaxObjects, "refuse programs with more data objects")
		csv      = fs.Bool("csv", false, "emit CSV instead of a text scatter")
		jobs     = fs.Int("j", 0, "search worker count (0 = GOMAXPROCS)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		stats    = fs.Bool("cachestats", false, "print memoization cache statistics to stderr")
		noMemo   = fs.Bool("nomemo", false, "disable the partition-result memoization cache")
		noDelta  = fs.Bool("nodelta", false, "evaluate every mask through the full per-mask engine instead of the Gray-code delta sweep")
		bestOnly = fs.Bool("best", false, "find only the optimal mapping by branch and bound (no full sweep; default object cap rises to the -best limit)")
		legacy   = fs.Bool("legacypartition", false, "use the legacy graph partitioner instead of the gain-bucket FM fast path")
		legInt   = fs.Bool("legacyinterp", false, "profile with the tree-walking interpreter instead of the bytecode VM")
		validate = fs.Bool("validate", false, "re-check every mapping's result with the independent schedule validator")
		timeout  = fs.Duration("timeout", 0, "abort the search after this duration (0 = no limit)")
		traceF   = fs.String("trace", "", "write the pipeline span trace to this file as sorted JSON lines")
		metrics  = fs.Bool("metrics", false, "print the metric registry summary after the output")
		promF    = fs.String("prom", "", "write the metrics in Prometheus text format to this file")
		cacheDir = fs.String("cachedir", "", "persistent artifact-cache directory: partition/schedule/profile results survive process restarts (empty = disabled)")
		cacheMax = fs.Int64("cachemaxbytes", 0, "artifact-cache size bound in bytes (0 = 1 GiB default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir != "" {
		if _, err := store.OpenShared(*cacheDir, store.Options{MaxBytes: *cacheMax}); err != nil {
			return fmt.Errorf("-cachedir: %w", err)
		}
		defer func() {
			if ferr := store.FlushShared(*cacheDir); err == nil {
				err = ferr
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sinks := &obs.ToolSinks{TracePath: *traceF, Summary: *metrics, PromPath: *promF}
	ctx = mcpart.ObserveContext(ctx, sinks.Observer())
	defer func() {
		if ferr := sinks.Flush(out); err == nil {
			err = ferr
		}
	}()

	prof, err := profutil.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if serr := prof.Stop(); err == nil {
			err = serr
		}
	}()

	src, err := mcpart.BenchmarkSource(*benchN)
	if err != nil {
		return err
	}
	p, err := mcpart.CompileCtx(ctx, *benchN, src, mcpart.CompileOptions{LegacyInterp: *legInt, CacheDir: *cacheDir, CacheMaxBytes: *cacheMax})
	if err != nil {
		return err
	}
	m, err := mcpart.MachinePreset(*machineN, *latency)
	if err != nil {
		return err
	}
	opts := mcpart.Options{Workers: *jobs, NoMemo: *noMemo, NoDelta: *noDelta, LegacyPartition: *legacy, Validate: *validate, CacheDir: *cacheDir, CacheMaxBytes: *cacheMax, Observer: sinks.Observer()}
	if *bestOnly {
		// -best raises the object cap to the branch-and-bound default
		// unless the user pinned -maxobjects explicitly.
		capObj := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "maxobjects" {
				capObj = *maxObj
			}
		})
		br, err := mcpart.BestMappingCtx(ctx, p, m, opts, capObj)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: optimal mapping mask %b (%#x)\n", *benchN, br.Mask, br.Mask)
		fmt.Fprintf(out, "cycles %d  moves %d\n", br.Cycles, br.Moves)
		fmt.Fprintf(out, "search: %d nodes visited, %d subtrees pruned\n", br.NodesVisited, br.NodesPruned)
		return nil
	}
	ex, err := mcpart.ExhaustiveSearchCtx(ctx, p, m, opts, *maxObj)
	if err != nil {
		return err
	}
	if *stats {
		s := p.MemoStats()
		total := s.Hits + s.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(s.Hits) / float64(total)
		}
		fmt.Fprintf(os.Stderr, "memo cache: hits %d  misses %d  rate %.1f%%  promotions %d  entries %d  evictions %d\n",
			s.Hits, s.Misses, 100*rate, s.Promotions, s.Entries, s.Evictions)
		if *cacheDir != "" {
			st := p.StoreStats()
			fmt.Fprintf(os.Stderr, "artifact store: hits %d  misses %d  rate %.1f%%  writes %d  corrupt %d  bytes %d\n",
				st.Hits, st.Misses, 100*st.HitRate(), st.Writes, st.CorruptSkipped, st.LogBytes)
		}
	}

	if *csv {
		fmt.Fprintln(out, "mask,cycles,perf_vs_worst,imbalance,is_gdp,is_pmax")
		for _, pt := range ex.Points {
			fmt.Fprintf(out, "%d,%d,%.6f,%.6f,%v,%v\n",
				pt.Mask, pt.Cycles, pt.PerfVsWorst, pt.Imbalance,
				pt.Mask == ex.GDPMask, pt.Mask == ex.PMaxMask)
		}
		return nil
	}
	fmt.Fprint(out, eval.FormatFigure9(*benchN, ex))
	if g := ex.Find(ex.GDPMask); g != nil {
		fmt.Fprintf(out, "\nGDP chose mask %b: %.3fx of worst, imbalance %.2f\n",
			g.Mask, g.PerfVsWorst, g.Imbalance)
	}
	if pm := ex.Find(ex.PMaxMask); pm != nil {
		fmt.Fprintf(out, "PMax chose mask %b: %.3fx of worst, imbalance %.2f\n",
			pm.Mask, pm.PerfVsWorst, pm.Imbalance)
	}
	best := float64(ex.Worst) / float64(ex.Best)
	fmt.Fprintf(out, "best achievable: %.3fx of worst\n", best)
	return nil
}
