package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpart/internal/serve/loadtest"
)

func TestParseLevels(t *testing.T) {
	got, err := parseLevels(" 1, 4 ,16 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseLevels: %v %v", got, err)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,,y"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted", bad)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-loadtest", "-levels", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -levels accepted")
	}
}

// TestLoadtestMode runs the self-hosted harness end to end at tiny scale
// and checks the written report parses and accounts for every request.
func TestLoadtestMode(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest mode skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := run([]string{
		"-loadtest", "-levels", "1,4", "-requests", "20",
		"-seed", "3", "-faultpct", "30", "-o", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"conc", "server counters:", "serve_requests"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, buf.String())
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmark string           `json:"benchmark"`
		Report    *loadtest.Report `json:"report"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report parse: %v", err)
	}
	if doc.Benchmark == "" || doc.Report == nil {
		t.Fatalf("report envelope incomplete: %s", data)
	}
	if len(doc.Report.Levels) != 2 {
		t.Fatalf("report levels: %+v", doc.Report.Levels)
	}
	for _, lr := range doc.Report.Levels {
		if lr.Requests != 20 || lr.Mismatches != 0 || lr.Untyped != 0 {
			t.Fatalf("level report %+v", lr)
		}
	}
}
