// Command gdpd serves the mcpart partitioning pipeline as a hardened
// HTTP+JSON daemon (DESIGN.md §14): partition-as-a-service with admission
// control, per-request budgets, panic containment, graceful degradation,
// and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	gdpd                            # serve on :8137
//	gdpd -addr 127.0.0.1:9000       # explicit listen address
//	gdpd -cachedir .gdpcache        # persistent artifact store under the session
//	gdpd -rate 50 -burst 100        # token-bucket admission: 50 req/s, burst 100
//	gdpd -maxconcurrent 8 -queue 32 # 8 worker slots, 32 queued before 503
//	gdpd -memceiling 512000000      # shrink caches when the heap passes ~512 MB
//	gdpd -inject                    # honor per-request fault-injection specs
//
// Endpoints: POST /v1/compile, /v1/partition, /v1/sweep, /v1/best (JSON
// bodies, see internal/serve's APIRequest), GET /healthz (liveness),
// /readyz (readiness; 503 while draining), /metrics (Prometheus text).
//
// On SIGTERM or SIGINT the daemon drains: readiness flips to 503, new
// requests shed with a typed 503, in-flight requests finish — or are
// cancelled cleanly at -draintimeout, each still receiving a response —
// and the artifact store flushes before exit.
//
// Load-test mode:
//
//	gdpd -loadtest                        # self-hosted harness, report to stdout
//	gdpd -loadtest -o BENCH_serve.json    # plus the JSON report artifact
//	gdpd -loadtest -levels 1,8,32 -requests 200 -seed 7 -faultpct 30
//
// -loadtest boots the daemon on a loopback port with fault injection
// enabled, drives the mixed-traffic harness (internal/serve/loadtest) at
// each concurrency level, verifies every successful response byte-for-byte
// against a serial oracle, and writes latency percentiles plus
// shed/degrade counts. A mismatch or an untyped failure exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mcpart"
	"mcpart/internal/obs"
	"mcpart/internal/serve"
	"mcpart/internal/serve/loadtest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdpd:", err)
		os.Exit(1)
	}
}

type flags struct {
	addr          string
	cacheDir      string
	cacheMaxBytes int64
	programs      int
	maxConcurrent int
	queue         int
	rate          float64
	burst         int
	timeout       time.Duration
	maxTimeout    time.Duration
	drainTimeout  time.Duration
	memCeiling    int64
	keepPrograms  int
	inject        bool

	loadtest bool
	levels   string
	requests int
	seed     int64
	faultPct int
	pacing   time.Duration
	out      string
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gdpd", flag.ContinueOnError)
	var f flags
	fs.StringVar(&f.addr, "addr", ":8137", "listen address")
	fs.StringVar(&f.cacheDir, "cachedir", "", "persistent artifact store directory (empty: memory only)")
	fs.Int64Var(&f.cacheMaxBytes, "cachemaxbytes", 0, "artifact store size bound in bytes (0: store default)")
	fs.IntVar(&f.programs, "programs", 0, "compiled programs kept resident (0: default)")
	fs.IntVar(&f.maxConcurrent, "maxconcurrent", 0, "requests doing pipeline work at once (0: GOMAXPROCS)")
	fs.IntVar(&f.queue, "queue", 0, "requests queued beyond the concurrent ones before 503 (0: default 64)")
	fs.Float64Var(&f.rate, "rate", 0, "token-bucket admission rate per second (0: unlimited)")
	fs.IntVar(&f.burst, "burst", 0, "token-bucket burst (0: max(1, rate))")
	fs.DurationVar(&f.timeout, "timeout", 0, "default per-request deadline (0: 30s)")
	fs.DurationVar(&f.maxTimeout, "maxtimeout", 0, "per-request deadline ceiling (0: 2m)")
	fs.DurationVar(&f.drainTimeout, "draintimeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	fs.Int64Var(&f.memCeiling, "memceiling", 0, "heap bytes that trigger cache shrinking (0: disabled)")
	fs.IntVar(&f.keepPrograms, "keepprograms", 0, "programs surviving a memory release (0: 1)")
	fs.BoolVar(&f.inject, "inject", false, "honor per-request fault-injection specs (load tests only)")

	fs.BoolVar(&f.loadtest, "loadtest", false, "self-host on loopback and run the load harness instead of serving")
	fs.StringVar(&f.levels, "levels", "1,4,16", "loadtest concurrency levels, comma-separated")
	fs.IntVar(&f.requests, "requests", 96, "loadtest requests per level")
	fs.Int64Var(&f.seed, "seed", 1, "loadtest mix seed")
	fs.IntVar(&f.faultPct, "faultpct", 25, "loadtest percentage of requests with injected faults")
	fs.DurationVar(&f.pacing, "pacing", 0, "loadtest per-worker think time between requests (0: none)")
	fs.StringVar(&f.out, "o", "", "loadtest JSON report path (empty: stdout summary only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	session := mcpart.NewSession(mcpart.SessionOptions{
		CacheDir:      f.cacheDir,
		CacheMaxBytes: f.cacheMaxBytes,
		MaxPrograms:   f.programs,
	})
	defer session.Close()

	reg := obs.NewRegistry()
	cfg := serve.Config{
		Session:         session,
		MaxConcurrent:   f.maxConcurrent,
		QueueDepth:      f.queue,
		RatePerSec:      f.rate,
		Burst:           f.burst,
		DefaultTimeout:  f.timeout,
		MaxTimeout:      f.maxTimeout,
		MemCeilingBytes: f.memCeiling,
		MemKeepPrograms: f.keepPrograms,
		AllowInject:     f.inject,
		Observer:        obs.New(reg, nil, nil),
	}

	if f.loadtest {
		cfg.AllowInject = true
		return runLoadtest(f, cfg, reg, w)
	}
	return serveForever(f, cfg, w)
}

// serveForever runs the daemon until SIGTERM/SIGINT, then drains.
func serveForever(f flags, cfg serve.Config, w io.Writer) error {
	srv := serve.New(cfg)
	hs := &http.Server{Addr: f.addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Fprintf(w, "gdpd: serving on %s\n", f.addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(w, "gdpd: draining (deadline %s)\n", f.drainTimeout)

	// Drain first: readiness flips, new requests shed with a typed 503,
	// accepted requests finish or are cancelled cleanly at the deadline —
	// each still writes its response before the listener closes.
	drainCtx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	fmt.Fprintln(w, "gdpd: drained")
	return drainErr
}

// runLoadtest self-hosts the daemon on a loopback port and drives the
// mixed-traffic harness against it.
func runLoadtest(f flags, cfg serve.Config, reg *obs.Registry, w io.Writer) error {
	levels, err := parseLevels(f.levels)
	if err != nil {
		return err
	}

	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		hs.Shutdown(ctx)
	}()
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "gdpd loadtest: %s levels=%v requests=%d seed=%d faults=%d%%\n",
		url, levels, f.requests, f.seed, f.faultPct)

	report, err := loadtest.Run(loadtest.Options{
		URL:      url,
		Levels:   levels,
		Requests: f.requests,
		Seed:     f.seed,
		FaultPct: f.faultPct,
		Pacing:   f.pacing,
	})
	if report != nil {
		printReport(w, report, reg)
		if f.out != "" {
			if werr := writeReport(f.out, report); werr != nil && err == nil {
				err = werr
			} else if werr == nil {
				fmt.Fprintf(w, "report written to %s\n", f.out)
			}
		}
	}
	return err
}

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -levels entry %q", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return levels, nil
}

func printReport(w io.Writer, r *loadtest.Report, reg *obs.Registry) {
	fmt.Fprintf(w, "%-6s %8s %6s %9s %5s %7s %9s %9s %9s\n",
		"conc", "requests", "ok", "degraded", "shed", "typed", "p50 ms", "p95 ms", "p99 ms")
	for _, lr := range r.Levels {
		typed := 0
		for _, n := range lr.TypedErrors {
			typed += n
		}
		fmt.Fprintf(w, "%-6d %8d %6d %9d %5d %7d %9.2f %9.2f %9.2f\n",
			lr.Concurrency, lr.Requests, lr.OK, lr.Degraded, lr.Shed, typed,
			lr.P50MS, lr.P95MS, lr.P99MS)
		if lr.Mismatches > 0 || lr.Untyped > 0 {
			fmt.Fprintf(w, "  !! %d mismatches, %d untyped failures\n", lr.Mismatches, lr.Untyped)
		}
	}
	// Server-side shed/degrade counters from the daemon's own registry.
	snap := reg.Snapshot()
	var names []string
	for _, m := range snap {
		if strings.HasPrefix(m.Name, "serve_") && !strings.Contains(m.Name, "latency") {
			names = append(names, m.Name)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(w, "server counters:")
	for _, n := range names {
		fmt.Fprintf(w, "  %s %d\n", n, snap.Value(n))
	}
}

// benchDoc is the BENCH_serve.json envelope, following the repository's
// BENCH_*.json convention: what ran, how to rerun it, what the numbers
// mean, then the raw report.
type benchDoc struct {
	Benchmark   string           `json:"benchmark"`
	Description string           `json:"description"`
	Command     string           `json:"command"`
	Contract    string           `json:"contract"`
	Report      *loadtest.Report `json:"report"`
}

func writeReport(path string, r *loadtest.Report) error {
	doc := benchDoc{
		Benchmark: "gdpd mixed-traffic load harness",
		Description: "The gdpd daemon self-hosted on a loopback port with fault injection enabled, " +
			"driven with a seeded mix of compile/partition/sweep/best requests across all schemes " +
			"at each concurrency level; the fault share of requests carries an injected eval-stage " +
			"fault with fallback (graceful degradation), an injected serve-stage fault (typed 500), " +
			"or a 1 ms deadline (typed 504 unless the warm cache legitimately beats it).",
		Command: "make bench-serve  (go run ./cmd/gdpd -loadtest -levels 1,4,16 -requests 96 " +
			"-seed 1 -faultpct 25 -pacing 20ms -maxconcurrent 2 -queue 4 -rate 250 -burst 20)",
		Contract: "Every 200 is compared byte-for-byte against a serial oracle pass over the same " +
			"request population (the deterministic `result` object only); every non-200 must carry a " +
			"typed error code. mismatches and untyped must be zero at every level or the run exits " +
			"nonzero. Latency percentiles are over successful requests and vary with the runner — as " +
			"do shed counts, which come from queue pressure on multicore runners and from the token " +
			"bucket on single-core ones; the correctness columns do not vary.",
		Report: r,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
