package main

import (
	"os"
	"strings"
	"testing"
)

func runBenchCmd(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("gdpbench %v: %v", args, err)
	}
	return sb.String()
}

func TestTable1(t *testing.T) {
	out := runBenchCmd(t, "-table", "1")
	for _, want := range []string{"GDP", "Profile Max", "Naive", "Unified Memory"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestFigure8aFiltered(t *testing.T) {
	out := runBenchCmd(t, "-figure", "8a", "-run", "halftone")
	if !strings.Contains(out, "Figure 8a") || !strings.Contains(out, "halftone") {
		t.Errorf("figure 8a output wrong:\n%s", out)
	}
	if strings.Contains(out, "rawcaudio") {
		t.Error("-run filter leaked other benchmarks")
	}
}

func TestFigure9Filtered(t *testing.T) {
	out := runBenchCmd(t, "-figure", "9", "-run", "halftone")
	if !strings.Contains(out, "Figure 9 (halftone)") || !strings.Contains(out, "<GDP>") {
		t.Errorf("figure 9 output wrong:\n%s", out)
	}
}

func TestCompileTimeSection(t *testing.T) {
	out := runBenchCmd(t, "-compiletime", "-run", "fir")
	if !strings.Contains(out, "Section 4.5") || !strings.Contains(out, "2/") {
		t.Errorf("compile-time output wrong:\n%s", out)
	}
}

func TestNothingSelected(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("expected error when nothing selected")
	}
}

func TestJSONExport(t *testing.T) {
	out := runBenchCmd(t, "-json", "-run", "halftone")
	for _, want := range []string{`"benchmark": "halftone"`, `"move_latency": 10`,
		`"gdp_rel"`, `"gdp_data_map"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestSVGExport(t *testing.T) {
	dir := t.TempDir()
	out := runBenchCmd(t, "-svg", dir, "-run", "halftone")
	if !strings.Contains(out, "figure8a.svg") {
		t.Errorf("no figure files reported:\n%s", out)
	}
	data, err := os.ReadFile(dir + "/figure8a.svg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "halftone") {
		t.Error("figure8a.svg content wrong")
	}
	if _, err := os.ReadFile(dir + "/figure9-halftone.svg"); err != nil {
		t.Errorf("exhaustive scatter missing: %v", err)
	}
}

func TestCacheStats(t *testing.T) {
	out := runBenchCmd(t, "-compiletime", "-run", "fir", "-cachestats")
	if !strings.Contains(out, "memoization cache (per benchmark):") ||
		!strings.Contains(out, "fir") || !strings.Contains(out, "hits") {
		t.Errorf("cache stats missing:\n%s", out)
	}
}

func TestNoMemoMatchesDefault(t *testing.T) {
	memoed := runBenchCmd(t, "-figure", "8a", "-run", "fir")
	plain := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-nomemo")
	if memoed != plain {
		t.Errorf("-nomemo changed the output:\n%s\nvs\n%s", memoed, plain)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	runBenchCmd(t, "-table", "1", "-cpuprofile", cpu, "-memprofile", mem)
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
