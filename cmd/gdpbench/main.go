// Command gdpbench regenerates the paper's evaluation: every table and
// figure of Chu & Mahlke (CGO 2006) over the bundled benchmark suite.
//
// Usage:
//
//	gdpbench -table 1          # Table 1: scheme summary
//	gdpbench -figure 2         # Fig 2: naive placement cycle increase
//	gdpbench -figure 7         # Fig 7: GDP/PMax vs unified, 1-cycle moves
//	gdpbench -figure 8a        # Fig 8a: 5-cycle moves
//	gdpbench -figure 8b        # Fig 8b: 10-cycle moves
//	gdpbench -figure 9         # Fig 9: exhaustive search (rawcaudio, rawdaudio)
//	gdpbench -figure 10        # Fig 10: intercluster move increase
//	gdpbench -compiletime      # §4.5: detailed-partitioner runs and times
//	gdpbench -all              # everything
//	gdpbench -json             # machine-readable per-benchmark results
//	gdpbench -svg DIR          # render every figure as an SVG file
//	gdpbench -all -j 8         # fan the evaluation across 8 workers
//
// -j N bounds the worker pool that compiles benchmarks and runs the
// (benchmark × scheme) evaluation matrix; 0 (the default) means
// runtime.GOMAXPROCS(0). Every table and figure is byte-identical for
// every -j value — parallelism changes only wall time.
//
// Performance introspection:
//
//	gdpbench -all -cpuprofile cpu.pprof -memprofile mem.pprof
//	gdpbench -all -cachestats  # per-benchmark memoization hit rates
//
// -cachestats appends, after the selected output, one line per compiled
// benchmark with the memoization cache's hit/miss/entry counters (the
// internal/memo cache that deduplicates per-function partition and
// schedule computations across schemes; disable it with -nomemo to
// measure the uncached engine).
//
// Persistent caching:
//
//	gdpbench -all -cachedir .gdpcache              # warm restarts
//	gdpbench -all -cachedir .gdpcache -cachestats  # plus tier-split hit rates
//
// -cachedir layers the content-addressed artifact store (internal/store,
// DESIGN.md §12) under the memoization cache: partition, lock, schedule,
// and profile results persist across process restarts, keyed by content
// hashes of the module, machine, and options. The cache changes wall time
// only — every table and figure is byte-identical with a cold, warm,
// corrupt, or absent cache. -cachemaxbytes bounds the log (default 1 GiB);
// a full log sheds new writes but keeps serving reads.
//
// Observability (DESIGN.md §10):
//
//	gdpbench -all -j 1 -metrics   # metric summary (totals + per-bench/scheme)
//	gdpbench -all -trace t.jsonl  # span trace, byte-identical at every -j
//	gdpbench -all -prom m.prom    # metrics in Prometheus text format
//
// Traces are fully deterministic; metric values are too except the memo
// hit/wait counts, which depend on worker scheduling — pin -j 1 to make
// the -metrics output reproducible byte for byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"mcpart/internal/bench"
	"mcpart/internal/eval"
	"mcpart/internal/machine"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
	"mcpart/internal/plot"
	"mcpart/internal/profutil"
	"mcpart/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdpbench:", err)
		os.Exit(1)
	}
}

// run executes the harness against args, writing to out. A panic escaping
// the pipeline is contained into an error so the tool always exits with a
// one-line diagnostic, never a crash.
func run(args []string, out io.Writer) (err error) {
	defer func() {
		if pe := parallel.Recovered("gdpbench", -1, recover()); pe != nil {
			err = pe
		}
	}()
	fs := flag.NewFlagSet("gdpbench", flag.ContinueOnError)
	var (
		table       = fs.String("table", "", "table to regenerate (1)")
		figure      = fs.String("figure", "", "figure to regenerate (2, 7, 8a, 8b, 9, 10)")
		compileTime = fs.Bool("compiletime", false, "regenerate §4.5 compile-time comparison")
		topology    = fs.Bool("topology", false, "emit the cluster-count x topology comparison (GDP vs unified on every machine preset)")
		all         = fs.Bool("all", false, "regenerate every table and figure")
		filter      = fs.String("run", "", "only benchmarks whose name contains this substring")
		jsonOut     = fs.Bool("json", false, "emit machine-readable JSON (per-benchmark, all latencies) instead of text")
		svgDir      = fs.String("svg", "", "write every figure as an SVG file into this directory")
		jobs        = fs.Int("j", 0, "evaluation worker count (0 = GOMAXPROCS)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		cacheStats  = fs.Bool("cachestats", false, "print per-benchmark memoization cache statistics after the output")
		noMemo      = fs.Bool("nomemo", false, "disable the partition-result memoization cache (for timing the uncached engine)")
		legacyPart  = fs.Bool("legacypartition", false, "use the legacy graph partitioner instead of the gain-bucket FM fast path (for A/B comparison)")
		legacyInt   = fs.Bool("legacyinterp", false, "profile with the tree-walking interpreter instead of the bytecode VM (for A/B comparison)")
		validate    = fs.Bool("validate", false, "re-check every result with the independent schedule validator")
		timeout     = fs.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		traceFile   = fs.String("trace", "", "write the pipeline span trace to this file as sorted JSON lines")
		metrics     = fs.Bool("metrics", false, "print the metric registry summary after the output")
		promFile    = fs.String("prom", "", "write the metrics in Prometheus text format to this file")
		cacheDir    = fs.String("cachedir", "", "persistent artifact-cache directory: partition/schedule/profile results survive process restarts (empty = disabled)")
		cacheMax    = fs.Int64("cachemaxbytes", 0, "artifact-cache size bound in bytes (0 = 1 GiB default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir != "" {
		// Open eagerly so a broken cache directory is a visible error here
		// instead of a silent cold cache inside the pipeline.
		if _, err := store.OpenShared(*cacheDir, store.Options{MaxBytes: *cacheMax}); err != nil {
			return fmt.Errorf("-cachedir: %w", err)
		}
		defer func() {
			if ferr := store.FlushShared(*cacheDir); err == nil {
				err = ferr
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sinks := &obs.ToolSinks{TracePath: *traceFile, Summary: *metrics, PromPath: *promFile}
	ctx = obs.With(ctx, sinks.Observer())
	prof, err := profutil.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	h := &harness{ctx: ctx, filter: *filter, workers: *jobs, noMemo: *noMemo, legacyPart: *legacyPart, legacyInterp: *legacyInt, validate: *validate, cacheDir: *cacheDir, cacheMax: *cacheMax, observer: sinks.Observer(), cache: map[string]*eval.Compiled{}, out: out}
	err = h.emit(*jsonOut, *svgDir, *table, *figure, *compileTime, *topology, *all)
	if stopErr := prof.Stop(); err == nil {
		err = stopErr
	}
	// Flush the observability sinks even when the run failed: a partial
	// trace is exactly what a failed run should leave behind.
	if ferr := sinks.Flush(out); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	if *cacheStats {
		h.emitCacheStats()
	}
	return nil
}

// emit runs whatever output the flags selected. -topology is not part of
// -all: the preset sweep multiplies the whole matrix by the machine count,
// and -all's output is pinned by determinism tests.
func (h *harness) emit(jsonOut bool, svgDir, table, figure string, compileTime, topology, all bool) error {
	out := h.out
	if jsonOut {
		return h.emitJSON()
	}
	if svgDir != "" {
		return h.emitSVGs(svgDir)
	}
	any := false
	if all || table == "1" {
		fmt.Fprintln(out, eval.FormatTable1())
		any = true
	}
	if all || figure == "2" {
		if err := h.figure2(); err != nil {
			return err
		}
		any = true
	}
	if all || figure == "7" {
		if err := h.perfFigure("Figure 7: performance relative to unified memory (1-cycle moves)", 1); err != nil {
			return err
		}
		any = true
	}
	if all || figure == "8a" {
		if err := h.perfFigure("Figure 8a: performance relative to unified memory (5-cycle moves)", 5); err != nil {
			return err
		}
		any = true
	}
	if all || figure == "8b" {
		if err := h.perfFigure("Figure 8b: performance relative to unified memory (10-cycle moves)", 10); err != nil {
			return err
		}
		any = true
	}
	if all || figure == "9" {
		if err := h.figure9(); err != nil {
			return err
		}
		any = true
	}
	if all || figure == "10" {
		if err := h.figure10(); err != nil {
			return err
		}
		any = true
	}
	if all || compileTime {
		if err := h.compileTime(); err != nil {
			return err
		}
		any = true
	}
	if topology {
		if err := h.topologyFigure(); err != nil {
			return err
		}
		any = true
	}
	if !any {
		return fmt.Errorf("nothing selected; use -all, -table, -figure, -topology, or -compiletime")
	}
	return nil
}

type harness struct {
	ctx        context.Context
	filter     string
	workers    int  // -j: worker pool bound, 0 = GOMAXPROCS
	noMemo     bool // -nomemo: bypass the partition-result cache
	legacyPart bool // -legacypartition: route bisections through the legacy path
	// legacyInterp (-legacyinterp) profiles with the tree-walking
	// interpreter instead of the bytecode VM.
	legacyInterp bool
	validate     bool   // -validate: independent re-check of every result
	cacheDir     string // -cachedir: persistent artifact store (empty = off)
	cacheMax     int64  // -cachemaxbytes: artifact log size bound
	observer     *obs.Observer
	cache        map[string]*eval.Compiled
	out          io.Writer
}

// options builds the evaluation options every scheme run shares.
func (h *harness) options() eval.Options {
	return eval.Options{Workers: h.workers, NoMemo: h.noMemo, LegacyPartition: h.legacyPart, Validate: h.validate, CacheDir: h.cacheDir, CacheMaxBytes: h.cacheMax, Observer: h.observer}
}

// emitCacheStats prints one memoization-counter line per compiled
// benchmark, in suite order.
func (h *harness) emitCacheStats() {
	fmt.Fprintln(h.out, "memoization cache (per benchmark):")
	for _, b := range h.benchmarks() {
		c, ok := h.cache[b.Name]
		if !ok {
			continue
		}
		s := c.MemoStats()
		fmt.Fprintf(h.out, "  %-12s hits %6d  misses %6d  rate %5.1f%%  promotions %5d  entries %5d  evictions %d\n",
			b.Name, s.Hits, s.Misses, 100*s.HitRate(), s.Promotions, s.Entries, s.Evictions)
	}
	if h.cacheDir != "" {
		if st, ok := store.SharedStats(h.cacheDir); ok {
			fmt.Fprintf(h.out, "artifact store (shared): hits %d  misses %d  rate %.1f%%  writes %d  corrupt %d  bytes %d\n",
				st.Hits, st.Misses, 100*st.HitRate(), st.Writes, st.CorruptSkipped, st.LogBytes)
		}
	}
}

func (h *harness) benchmarks() []bench.Benchmark {
	var out []bench.Benchmark
	for _, b := range bench.All() {
		if h.filter == "" || strings.Contains(b.Name, h.filter) {
			out = append(out, b)
		}
	}
	return out
}

func (h *harness) compiled(b bench.Benchmark) (*eval.Compiled, error) {
	if c, ok := h.cache[b.Name]; ok {
		return c, nil
	}
	c, err := eval.PrepareOpts(h.ctx, b.Name, b.Source, eval.Options{LegacyInterp: h.legacyInterp, CacheDir: h.cacheDir, CacheMaxBytes: h.cacheMax})
	if err != nil {
		return nil, err
	}
	if b.Want != 0 && c.Ret != b.Want {
		return nil, fmt.Errorf("%s: checksum %d, want %d", b.Name, c.Ret, b.Want)
	}
	h.cache[b.Name] = c
	return c, nil
}

// prepareAll compiles every uncached benchmark concurrently (bounded by
// -j), validates checksums, and returns the compiled list in suite order.
func (h *harness) prepareAll(bs []bench.Benchmark) ([]*eval.Compiled, error) {
	var missing []eval.BenchSpec
	for _, b := range bs {
		if _, ok := h.cache[b.Name]; !ok {
			missing = append(missing, eval.BenchSpec{Name: b.Name, Src: b.Source})
		}
	}
	cs, err := eval.PrepareAllOpts(h.ctx, missing, h.workers, eval.Options{LegacyInterp: h.legacyInterp, CacheDir: h.cacheDir, CacheMaxBytes: h.cacheMax})
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		h.cache[c.Name] = c
	}
	out := make([]*eval.Compiled, len(bs))
	for i, b := range bs {
		c := h.cache[b.Name]
		if b.Want != 0 && c.Ret != b.Want {
			return nil, fmt.Errorf("%s: checksum %d, want %d", b.Name, c.Ret, b.Want)
		}
		out[i] = c
	}
	return out, nil
}

func (h *harness) runAll(lat int) ([]*eval.BenchResult, error) {
	cfg := machine.Paper2Cluster(lat)
	cs, err := h.prepareAll(h.benchmarks())
	if err != nil {
		return nil, err
	}
	return eval.RunMatrixCtx(h.ctx, cs, cfg, h.options())
}

func (h *harness) figure2() error {
	lats := []int{1, 5, 10}
	results := map[int][]*eval.BenchResult{}
	for _, lat := range lats {
		rs, err := h.runAll(lat)
		if err != nil {
			return err
		}
		results[lat] = rs
	}
	fmt.Fprintln(h.out, eval.FormatFigure2(lats, results))
	return nil
}

func (h *harness) perfFigure(title string, lat int) error {
	rs, err := h.runAll(lat)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, eval.FormatPerfFigure(title, rs))
	return nil
}

func (h *harness) figure9() error {
	cfg := machine.Paper2Cluster(5)
	for _, b := range h.benchmarks() {
		if !b.Exhaustive {
			continue
		}
		c, err := h.compiled(b)
		if err != nil {
			return err
		}
		ex, err := eval.ExhaustiveCtx(h.ctx, c, cfg, h.options(), 14)
		if err != nil {
			return err
		}
		fmt.Fprintln(h.out, eval.FormatFigure9(b.Name, ex))
	}
	return nil
}

// topologyFigure sweeps every machine preset at 5-cycle base move latency
// and reports, per preset, the geometric-mean GDP performance relative to
// that preset's own unified-memory bound and the total intercluster moves.
// The (preset x benchmark) cells fan across the -j pool; the table is
// assembled in preset order, so the output is byte-identical at every -j.
func (h *harness) topologyFigure() error {
	presets := machine.PresetNames()
	cfgs := make([]*machine.Config, len(presets))
	for i, name := range presets {
		cfg, err := machine.Preset(name, 5)
		if err != nil {
			return err
		}
		cfgs[i] = cfg
	}
	cs, err := h.prepareAll(h.benchmarks())
	if err != nil {
		return err
	}
	if len(cs) == 0 {
		return fmt.Errorf("no benchmarks match -run %q", h.filter)
	}
	type cell struct{ unified, gdp *eval.Result }
	cells, err := parallel.MapStage(h.ctx, "topology", len(presets)*len(cs), h.workers,
		func(ctx context.Context, i int) (cell, error) {
			cfg, c := cfgs[i/len(cs)], cs[i%len(cs)]
			u, err := eval.RunSchemeCtx(ctx, c, cfg, eval.SchemeUnified, h.options())
			if err != nil {
				return cell{}, &eval.CellError{Bench: c.Name, Scheme: eval.SchemeUnified, Err: err}
			}
			g, err := eval.RunSchemeCtx(ctx, c, cfg, eval.SchemeGDP, h.options())
			if err != nil {
				return cell{}, &eval.CellError{Bench: c.Name, Scheme: eval.SchemeGDP, Err: err}
			}
			return cell{u, g}, nil
		})
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, "Cluster count x topology: GDP vs per-machine unified bound (5-cycle base latency)")
	fmt.Fprintf(h.out, "  %-8s %-8s %-9s %12s %12s\n", "preset", "clusters", "topology", "geomean", "moves")
	for p, name := range presets {
		logSum, moves := 0.0, int64(0)
		for b := range cs {
			c := cells[p*len(cs)+b]
			logSum += math.Log(eval.RelativePerf(c.unified, c.gdp))
			moves += c.gdp.Moves
		}
		cfg := cfgs[p]
		fmt.Fprintf(h.out, "  %-8s %-8d %-9s %12.4f %12d\n",
			name, cfg.NumClusters(), cfg.Topology, math.Exp(logSum/float64(len(cs))), moves)
	}
	return nil
}

func (h *harness) figure10() error {
	rs, err := h.runAll(5)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, eval.FormatFigure10(rs))
	return nil
}

// jsonRow is the machine-readable record for one benchmark at one latency.
type jsonRow struct {
	Benchmark     string  `json:"benchmark"`
	Latency       int     `json:"move_latency"`
	UnifiedCycles int64   `json:"unified_cycles"`
	GDPCycles     int64   `json:"gdp_cycles"`
	PMaxCycles    int64   `json:"profilemax_cycles"`
	NaiveCycles   int64   `json:"naive_cycles"`
	UnifiedMoves  int64   `json:"unified_moves"`
	GDPMoves      int64   `json:"gdp_moves"`
	PMaxMoves     int64   `json:"profilemax_moves"`
	NaiveMoves    int64   `json:"naive_moves"`
	GDPRel        float64 `json:"gdp_rel"`
	PMaxRel       float64 `json:"profilemax_rel"`
	NaiveRel      float64 `json:"naive_rel"`
	GDPDataMap    []int   `json:"gdp_data_map"`
}

// emitJSON writes one record per (benchmark, latency) for external
// plotting of Figures 2, 7, 8 and 10.
func (h *harness) emitJSON() error {
	var rows []jsonRow
	for _, lat := range []int{1, 5, 10} {
		rs, err := h.runAll(lat)
		if err != nil {
			return err
		}
		for _, r := range rs {
			rows = append(rows, jsonRow{
				Benchmark:     r.Name,
				Latency:       lat,
				UnifiedCycles: r.Unified.Cycles,
				GDPCycles:     r.GDP.Cycles,
				PMaxCycles:    r.PMax.Cycles,
				NaiveCycles:   r.Naive.Cycles,
				UnifiedMoves:  r.Unified.Moves,
				GDPMoves:      r.GDP.Moves,
				PMaxMoves:     r.PMax.Moves,
				NaiveMoves:    r.Naive.Moves,
				GDPRel:        eval.RelativePerf(r.Unified, r.GDP),
				PMaxRel:       eval.RelativePerf(r.Unified, r.PMax),
				NaiveRel:      eval.RelativePerf(r.Unified, r.Naive),
				GDPDataMap:    r.GDP.DataMap,
			})
		}
	}
	enc := json.NewEncoder(h.out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// emitSVGs renders every figure into dir as SVG files.
func (h *harness) emitSVGs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, svg string) error {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(h.out, "wrote %s\n", path)
		return nil
	}
	byLat := map[int][]*eval.BenchResult{}
	for _, lat := range []int{1, 5, 10} {
		rs, err := h.runAll(lat)
		if err != nil {
			return err
		}
		byLat[lat] = rs
	}
	labels := make([]string, 0, len(byLat[1]))
	for _, r := range byLat[1] {
		labels = append(labels, r.Name)
	}
	// Figure 2: naive cycle increase per latency.
	var f2 []plot.Series
	for _, lat := range []int{1, 5, 10} {
		vals := make([]float64, len(byLat[lat]))
		for i, r := range byLat[lat] {
			vals[i] = eval.CycleIncreasePct(r.Unified, r.Naive)
		}
		f2 = append(f2, plot.Series{Name: fmt.Sprintf("lat %d", lat), Values: vals})
	}
	if err := write("figure2.svg", plot.BarChart(
		"Figure 2: cycle increase of naive data placement vs unified memory",
		"% increase", labels, f2, 0, 0)); err != nil {
		return err
	}
	// Figures 7/8a/8b: relative performance.
	perf := func(rs []*eval.BenchResult) []plot.Series {
		g := make([]float64, len(rs))
		p := make([]float64, len(rs))
		for i, r := range rs {
			g[i] = 100 * eval.RelativePerf(r.Unified, r.GDP)
			p[i] = 100 * eval.RelativePerf(r.Unified, r.PMax)
		}
		return []plot.Series{{Name: "GDP", Values: g}, {Name: "ProfileMax", Values: p}}
	}
	for _, fig := range []struct {
		name, title string
		lat         int
	}{
		{"figure7.svg", "Figure 7: performance relative to unified memory (1-cycle moves)", 1},
		{"figure8a.svg", "Figure 8a: performance relative to unified memory (5-cycle moves)", 5},
		{"figure8b.svg", "Figure 8b: performance relative to unified memory (10-cycle moves)", 10},
	} {
		if err := write(fig.name, plot.BarChart(fig.title, "% of unified",
			labels, perf(byLat[fig.lat]), 115, 100)); err != nil {
			return err
		}
	}
	// Figure 9 scatters.
	cfg := machine.Paper2Cluster(5)
	for _, b := range h.benchmarks() {
		if !b.Exhaustive {
			continue
		}
		c, err := h.compiled(b)
		if err != nil {
			return err
		}
		ex, err := eval.ExhaustiveCtx(h.ctx, c, cfg, h.options(), 14)
		if err != nil {
			return err
		}
		pts := make([]plot.Point, len(ex.Points))
		for i, pt := range ex.Points {
			mark := ""
			if pt.Mask == ex.GDPMask {
				mark = "GDP"
			} else if pt.Mask == ex.PMaxMask {
				mark = "PMax"
			}
			pts[i] = plot.Point{X: pt.Imbalance, Y: pt.PerfVsWorst, Shade: pt.Imbalance, Mark: mark}
		}
		if err := write("figure9-"+b.Name+".svg", plot.Scatter(
			"Figure 9 ("+b.Name+"): exhaustive data mappings",
			"data size imbalance", "performance vs worst mapping", pts)); err != nil {
			return err
		}
	}
	// Figure 10: move increase.
	rs := byLat[5]
	g10 := make([]float64, len(rs))
	p10 := make([]float64, len(rs))
	for i, r := range rs {
		g10[i] = eval.MoveIncreasePct(r.Unified, r.GDP)
		p10[i] = eval.MoveIncreasePct(r.Unified, r.PMax)
	}
	return write("figure10.svg", plot.BarChart(
		"Figure 10: increase in dynamic intercluster moves vs unified (5-cycle moves)",
		"% increase", labels,
		[]plot.Series{{Name: "GDP", Values: g10}, {Name: "ProfileMax", Values: p10}}, 0, 0))
}

func (h *harness) compileTime() error {
	rs, err := h.runAll(5)
	if err != nil {
		return err
	}
	fmt.Fprintln(h.out, eval.FormatCompileTime(rs))
	return nil
}
