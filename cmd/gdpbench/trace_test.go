package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// traceBytes runs gdpbench with -trace into a temp file and returns the
// raw trace bytes.
func traceBytes(t *testing.T, args ...string) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	runBenchCmd(t, append(args, "-trace", path)...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	return data
}

// saveTraceArtifact copies a mismatching trace into $TRACE_ARTIFACT_DIR
// (when set) so CI can upload it on failure.
func saveTraceArtifact(t *testing.T, name string, data []byte) {
	dir := os.Getenv("TRACE_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("saved trace artifact %s", path)
}

// TestTraceDeterministicAcrossWorkers pins the observability layer's core
// contract: the span trace a run emits is byte-identical at every -j
// level, because span timestamps come from the fixed clock and the sink
// sorts its lines on write. Two benchmarks × two machine presets
// (Figure 7's 1-cycle machine and Figure 8a's 5-cycle machine).
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"fir-fig7", []string{"-figure", "7", "-run", "fir"}},
		{"fir-fig8a", []string{"-figure", "8a", "-run", "fir"}},
		{"halftone-fig7", []string{"-figure", "7", "-run", "halftone"}},
		{"halftone-fig8a", []string{"-figure", "8a", "-run", "halftone"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j1 := traceBytes(t, append([]string{"-j", "1"}, tc.args...)...)
			j8 := traceBytes(t, append([]string{"-j", "8"}, tc.args...)...)
			if len(j1) == 0 {
				t.Fatal("empty trace at -j 1")
			}
			if !bytes.Equal(j1, j8) {
				saveTraceArtifact(t, tc.name+"-j1.jsonl", j1)
				saveTraceArtifact(t, tc.name+"-j8.jsonl", j8)
				t.Errorf("trace differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(j1), len(j8))
			}
		})
	}
}

// TestTraceRerunIdentical pins run-to-run determinism on one preset: two
// identical invocations produce identical trace files.
func TestTraceRerunIdentical(t *testing.T) {
	a := traceBytes(t, "-figure", "8a", "-run", "fir", "-j", "4")
	b := traceBytes(t, "-figure", "8a", "-run", "fir", "-j", "4")
	if !bytes.Equal(a, b) {
		saveTraceArtifact(t, "rerun-a.jsonl", a)
		saveTraceArtifact(t, "rerun-b.jsonl", b)
		t.Error("re-running the same invocation changed the trace")
	}
}
