package main

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mcpart/internal/store"
)

// restartCache simulates a process restart for the shared artifact store:
// flush, close, and forget the handle so the next run reopens the log and
// rebuilds the index from disk.
func restartCache(t *testing.T, dir string) {
	t.Helper()
	if err := store.DropShared(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCacheDirColdWarmIdentical pins the tool-level determinism contract:
// the same invocation with no cache, a cold cache, a warm cache (after a
// simulated restart), and a warm cache at -j 8 all emit byte-identical
// output.
func TestCacheDirColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	ref := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-j", "1")

	cold := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-j", "1", "-cachedir", dir)
	if cold != ref {
		t.Errorf("cold cache changed the output:\n%s\nvs\n%s", cold, ref)
	}
	restartCache(t, dir)

	warm := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-j", "1", "-cachedir", dir)
	if warm != ref {
		t.Errorf("warm cache changed the output:\n%s\nvs\n%s", warm, ref)
	}
	warm8 := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-j", "8", "-cachedir", dir)
	if warm8 != ref {
		t.Errorf("warm cache at -j 8 changed the output:\n%s\nvs\n%s", warm8, ref)
	}
}

// TestCacheDirExhaustiveWarm pins the Figure 9 sweep — the workload the
// store exists for — across a restart: byte-identical output and a
// nonzero disk-tier hit count on the warm pass.
func TestCacheDirExhaustiveWarm(t *testing.T) {
	dir := t.TempDir()
	cold := runBenchCmd(t, "-figure", "9", "-run", "halftone", "-j", "1", "-cachedir", dir)
	restartCache(t, dir)
	warm := runBenchCmd(t, "-figure", "9", "-run", "halftone", "-j", "1", "-cachedir", dir)
	if cold != warm {
		t.Errorf("warm exhaustive output differs:\n%s\nvs\n%s", warm, cold)
	}
	st, ok := store.SharedStats(dir)
	if !ok || st.Hits == 0 {
		t.Errorf("warm exhaustive sweep had no store hits: %+v (ok=%v)", st, ok)
	}
}

// TestCacheStatsStoreLine pins the -cachestats tier split: with -cachedir
// the report gains an artifact-store line, and after a restart the warm
// run's line shows nonzero hits.
func TestCacheStatsStoreLine(t *testing.T) {
	dir := t.TempDir()
	runBenchCmd(t, "-compiletime", "-run", "fir", "-cachedir", dir)
	restartCache(t, dir)
	out := runBenchCmd(t, "-compiletime", "-run", "fir", "-cachedir", dir, "-cachestats")
	if !strings.Contains(out, "memoization cache (per benchmark):") ||
		!strings.Contains(out, "promotions") {
		t.Errorf("memo stats missing tier split:\n%s", out)
	}
	m := regexp.MustCompile(`artifact store \(shared\): hits (\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no artifact store line:\n%s", out)
	}
	if hits, _ := strconv.Atoi(m[1]); hits == 0 {
		t.Errorf("warm run reported zero store hits:\n%s", out)
	}
}

// TestCacheDirBadPathErrors pins eager open: an unusable cache directory
// is a visible startup error, not a silent cold cache.
func TestCacheDirBadPathErrors(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-table", "1", "-cachedir", "/dev/null/not-a-dir"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "-cachedir") {
		t.Errorf("bad -cachedir err = %v, want -cachedir open failure", err)
	}
}
