package main

import (
	"strings"
	"testing"
)

func TestValidateFlagTable1(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "7", "-run", "fir", "-validate"}, &sb); err != nil {
		t.Fatalf("-validate run failed: %v", err)
	}
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Errorf("output missing figure:\n%s", sb.String())
	}
}

func TestTimeoutAborts(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-all", "-timeout", "1ns"}, &sb)
	if err == nil {
		t.Fatal("want deadline error under -timeout 1ns")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadline") {
		t.Errorf("error = %q, want a deadline diagnostic", msg)
	}
	if strings.ContainsRune(msg, '\n') {
		t.Errorf("diagnostic is not one line: %q", msg)
	}
}

func TestBadFlagFails(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "99"}, &sb); err == nil {
		t.Fatal("want error for unknown figure")
	}
}
