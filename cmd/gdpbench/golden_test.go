package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// checkGolden compares got to testdata/<name>.golden, rewriting the file
// instead when the test binary runs with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./cmd/... -update` to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("output differs from %s at line %d:\n got: %q\nwant: %q\n(rerun with -update after intentional changes)", path, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s in trailing newlines", path)
}

// TestMetricsGolden pins the -metrics summary byte for byte. Memo hit and
// wait counts depend on worker scheduling order, so the invocation pins
// -j 1: a serial sweep visits the cache in one reproducible order, and
// every other counter derives from the deterministic simulation itself.
func TestMetricsGolden(t *testing.T) {
	out := runBenchCmd(t, "-figure", "8a", "-run", "fir", "-j", "1", "-metrics")
	checkGolden(t, "metrics_fig8a_fir", out)
}
