// Command gdpc is the compiler driver: it compiles an mclang source file
// (or a bundled benchmark), partitions data and computation for a
// multicluster VLIW machine under a chosen scheme, and reports dynamic
// cycles, intercluster moves, and the data-object placement.
//
// Usage:
//
//	gdpc -bench rawcaudio -scheme gdp -latency 5
//	gdpc -src kernel.mc -scheme all -latency 10 -clusters 2
//	gdpc -bench fir -dump-ir
//
// Observability (DESIGN.md §10): -metrics prints the run's counter/
// histogram summary (memo hits, FM moves, scheduled cycles, ... with
// per-scheme labels), -trace FILE writes the deterministic span trace
// as sorted JSON lines, -prom FILE the metrics in Prometheus text
// format. gdpc evaluates schemes serially, so all three outputs are
// reproducible byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"mcpart"
	"mcpart/internal/ir"
	"mcpart/internal/obs"
	"mcpart/internal/parallel"
	"mcpart/internal/sched"
	"mcpart/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdpc:", err)
		os.Exit(1)
	}
}

// run executes the driver against args, writing output to out. Panics
// escaping the pipeline are contained into errors so the driver always
// exits with a one-line diagnostic.
func run(args []string, out io.Writer) (err error) {
	defer func() {
		if pe := parallel.Recovered("gdpc", -1, recover()); pe != nil {
			err = pe
		}
	}()
	fs := flag.NewFlagSet("gdpc", flag.ContinueOnError)
	var (
		srcPath   = fs.String("src", "", "path to an mclang source file")
		benchN    = fs.String("bench", "", "name of a bundled benchmark (see -list)")
		list      = fs.Bool("list", false, "list bundled benchmarks and exit")
		scheme    = fs.String("scheme", "all", "gdp | profilemax | naive | unified | all")
		latency   = fs.Int("latency", 5, "intercluster move latency in cycles")
		clusters  = fs.Int("clusters", 2, "number of clusters (2 or 4; ignored when -machine is set)")
		machineN  = fs.String("machine", "", "machine preset: paper2 | four | eight | hetero2 | ring4 | ring8 | mesh4 | mesh8 | numa4 (overrides -clusters)")
		unroll    = fs.Int("unroll", 0, "loop unrolling factor (0 = default)")
		dumpIR    = fs.Bool("dump-ir", false, "print the compiled IR and exit")
		dumpSched = fs.String("dump-sched", "", "print the VLIW schedule of this function under the chosen scheme")
		objects   = fs.Bool("objects", true, "print the data-object table")
		validate  = fs.Bool("validate", false, "re-check every result with the independent schedule validator")
		timeout   = fs.Duration("timeout", 0, "abort after this duration (0 = no limit)")
		traceFile = fs.String("trace", "", "write the pipeline span trace to this file as sorted JSON lines")
		metrics   = fs.Bool("metrics", false, "print the metric registry summary after the output")
		promFile  = fs.String("prom", "", "write the metrics in Prometheus text format to this file")
		legacyInt = fs.Bool("legacyinterp", false, "profile with the tree-walking interpreter instead of the bytecode VM (for A/B comparison)")
		cacheDir  = fs.String("cachedir", "", "persistent artifact-cache directory: partition/schedule/profile results survive process restarts (empty = disabled)")
		cacheMax  = fs.Int64("cachemaxbytes", 0, "artifact-cache size bound in bytes (0 = 1 GiB default)")
		cacheStat = fs.Bool("cachestats", false, "print memoization and artifact-store cache statistics after the output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cacheDir != "" {
		if _, err := store.OpenShared(*cacheDir, store.Options{MaxBytes: *cacheMax}); err != nil {
			return fmt.Errorf("-cachedir: %w", err)
		}
		defer func() {
			if ferr := store.FlushShared(*cacheDir); err == nil {
				err = ferr
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sinks := &obs.ToolSinks{TracePath: *traceFile, Summary: *metrics, PromPath: *promFile}
	ctx = mcpart.ObserveContext(ctx, sinks.Observer())
	defer func() {
		if ferr := sinks.Flush(out); err == nil {
			err = ferr
		}
	}()

	if *list {
		for _, n := range mcpart.BenchmarkNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	prog, err := load(ctx, *srcPath, *benchN, *unroll, *legacyInt, *cacheDir, *cacheMax)
	if err != nil {
		return err
	}
	if *dumpIR {
		fmt.Fprint(out, ir.Print(prog.Module()))
		return nil
	}

	var m *mcpart.Machine
	if *machineN != "" {
		m, err = mcpart.MachinePreset(*machineN, *latency)
		if err != nil {
			return err
		}
	} else {
		switch *clusters {
		case 2:
			m = mcpart.Paper2Cluster(*latency)
		case 4:
			m = mcpart.FourCluster(*latency)
		default:
			return fmt.Errorf("unsupported cluster count %d (use 2 or 4, or -machine for topology presets)", *clusters)
		}
	}

	fmt.Fprintf(out, "program %s  checksum %d  machine %s\n", prog.Name(), prog.Checksum(), m.Name)
	if *objects {
		fmt.Fprintln(out, "data objects:")
		for _, o := range prog.Objects() {
			kind := "global"
			if o.Heap {
				kind = "heap"
			}
			fmt.Fprintf(out, "  #%-3d %-24s %-6s %8d bytes %10d accesses\n",
				o.ID, o.Name, kind, o.Bytes, o.Accesses)
		}
	}

	schemes, err := pickSchemes(*scheme)
	if err != nil {
		return err
	}
	var unified *mcpart.Result
	for _, s := range schemes {
		r, err := mcpart.EvaluateCtx(ctx, prog, m, s, mcpart.Options{Validate: *validate, CacheDir: *cacheDir, CacheMaxBytes: *cacheMax, Observer: sinks.Observer()})
		if err != nil {
			return err
		}
		if *dumpSched != "" && s == schemes[len(schemes)-1] {
			f := prog.Module().Func(*dumpSched)
			if f == nil {
				return fmt.Errorf("no function %q", *dumpSched)
			}
			fmt.Fprint(out, sched.FormatFunc(f, r.Assign[f], m))
		}
		line := fmt.Sprintf("%-11s %10d cycles %8d moves", s, r.Cycles, r.Moves)
		if s == mcpart.SchemeUnified {
			unified = r
		} else if unified != nil {
			line += fmt.Sprintf("   %6.1f%% of unified", 100*mcpart.RelativePerf(unified, r))
		}
		if r.DataMap != nil {
			line += "   map=" + mapString(r.DataMap)
		}
		fmt.Fprintln(out, line)
	}
	if *cacheStat {
		s := prog.MemoStats()
		fmt.Fprintf(out, "memo cache: hits %d  misses %d  promotions %d  entries %d  evictions %d\n",
			s.Hits, s.Misses, s.Promotions, s.Entries, s.Evictions)
		if *cacheDir != "" {
			st := prog.StoreStats()
			fmt.Fprintf(out, "artifact store: hits %d  misses %d  rate %.1f%%  writes %d  corrupt %d  bytes %d\n",
				st.Hits, st.Misses, 100*st.HitRate(), st.Writes, st.CorruptSkipped, st.LogBytes)
		}
	}
	return nil
}

func load(ctx context.Context, srcPath, benchName string, unroll int, legacyInterp bool, cacheDir string, cacheMax int64) (*mcpart.Program, error) {
	copts := mcpart.CompileOptions{Unroll: unroll, LegacyInterp: legacyInterp, CacheDir: cacheDir, CacheMaxBytes: cacheMax}
	switch {
	case srcPath != "" && benchName != "":
		return nil, fmt.Errorf("use only one of -src and -bench")
	case srcPath != "":
		data, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		return mcpart.CompileCtx(ctx, srcPath, string(data), copts)
	case benchName != "":
		src, err := mcpart.BenchmarkSource(benchName)
		if err != nil {
			return nil, err
		}
		return mcpart.CompileCtx(ctx, benchName, src, copts)
	}
	return nil, fmt.Errorf("need -src FILE or -bench NAME (try -list)")
}

func pickSchemes(s string) ([]mcpart.Scheme, error) {
	switch s {
	case "gdp":
		return []mcpart.Scheme{mcpart.SchemeUnified, mcpart.SchemeGDP}, nil
	case "profilemax":
		return []mcpart.Scheme{mcpart.SchemeUnified, mcpart.SchemeProfileMax}, nil
	case "naive":
		return []mcpart.Scheme{mcpart.SchemeUnified, mcpart.SchemeNaive}, nil
	case "unified":
		return []mcpart.Scheme{mcpart.SchemeUnified}, nil
	case "all":
		return []mcpart.Scheme{mcpart.SchemeUnified, mcpart.SchemeGDP,
			mcpart.SchemeProfileMax, mcpart.SchemeNaive}, nil
	}
	return nil, fmt.Errorf("unknown scheme %q", s)
}

func mapString(dm mcpart.DataMap) string {
	out := make([]byte, len(dm))
	for i, c := range dm {
		out[i] = byte('0' + c)
	}
	return string(out)
}
