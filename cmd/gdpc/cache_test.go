package main

import (
	"strings"
	"testing"

	"mcpart/internal/store"
)

// TestGdpcCacheDirColdWarmIdentical pins the driver's determinism across
// cache states: no cache, cold cache, and warm cache (after a simulated
// process restart) emit byte-identical output.
func TestGdpcCacheDirColdWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-bench", "fir", "-scheme", "all"}
	ref := runCmd(t, args...)

	cached := append(append([]string(nil), args...), "-cachedir", dir)
	if cold := runCmd(t, cached...); cold != ref {
		t.Errorf("cold cache changed the output:\n%s\nvs\n%s", cold, ref)
	}
	if err := store.DropShared(dir); err != nil {
		t.Fatal(err)
	}
	if warm := runCmd(t, cached...); warm != ref {
		t.Errorf("warm cache changed the output:\n%s\nvs\n%s", warm, ref)
	}
	st, ok := store.SharedStats(dir)
	if !ok || st.Hits == 0 {
		t.Errorf("warm run had no store hits: %+v (ok=%v)", st, ok)
	}
}

// TestGdpcCacheStats pins the -cachestats tier-split lines.
func TestGdpcCacheStats(t *testing.T) {
	dir := t.TempDir()
	out := runCmd(t, "-bench", "fir", "-scheme", "gdp", "-cachedir", dir, "-cachestats")
	for _, want := range []string{"memo cache:", "promotions", "artifact store:", "writes"} {
		if !strings.Contains(out, want) {
			t.Errorf("cache stats missing %q:\n%s", want, out)
		}
	}
}
