package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func wantRunError(t *testing.T, wantSub string, args ...string) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	if err == nil {
		t.Fatalf("gdpc %v: want error, got success", args)
	}
	msg := err.Error()
	if !strings.Contains(msg, wantSub) {
		t.Errorf("gdpc %v: error %q missing %q", args, msg, wantSub)
	}
	if strings.ContainsRune(msg, '\n') {
		t.Errorf("gdpc %v: diagnostic is not one line: %q", args, msg)
	}
}

// TestFailurePaths pins the one-line diagnostics: the stage or input that
// failed must be nameable from the message alone.
func TestFailurePaths(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.mc")
	if err := os.WriteFile(bad, []byte("func main() int { return x; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantRunError(t, "unknown benchmark", "-bench", "doesnotexist")
	wantRunError(t, "undefined identifier", "-src", bad)
	wantRunError(t, "unknown scheme", "-bench", "fir", "-scheme", "bogus")
	wantRunError(t, "unsupported cluster count", "-bench", "fir", "-clusters", "3")
	wantRunError(t, "no function", "-bench", "fir", "-scheme", "gdp", "-dump-sched", "nope")
	wantRunError(t, "one of -src and -bench", "-src", bad, "-bench", "fir")
}

func TestValidateFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bench", "fir", "-validate", "-objects=false"}, &sb); err != nil {
		t.Fatalf("-validate run failed: %v", err)
	}
	if !strings.Contains(sb.String(), "GDP") {
		t.Errorf("output missing GDP line:\n%s", sb.String())
	}
}

func TestTimeoutFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-bench", "fir", "-timeout", "1ns"}, &sb)
	if err == nil {
		t.Fatal("want deadline error under -timeout 1ns")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error = %v, want a deadline diagnostic", err)
	}
}
