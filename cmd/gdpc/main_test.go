package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("gdpc %v: %v", args, err)
	}
	return sb.String()
}

func TestListBenchmarks(t *testing.T) {
	out := runCmd(t, "-list")
	for _, want := range []string{"rawcaudio", "mpeg2dec", "viterbi"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q", want)
		}
	}
}

func TestEvaluateBenchmarkAllSchemes(t *testing.T) {
	out := runCmd(t, "-bench", "halftone", "-latency", "5")
	for _, want := range []string{"Unified", "GDP", "ProfileMax", "Naive",
		"cycles", "map=", "data objects:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLegacyInterpIdenticalOutput pins that the profiling-engine switch
// is invisible end to end: gdpc's full scheme evaluation (checksums,
// cycles, data maps) is byte-identical with and without -legacyinterp.
func TestLegacyInterpIdenticalOutput(t *testing.T) {
	vm := runCmd(t, "-bench", "halftone", "-validate")
	tree := runCmd(t, "-bench", "halftone", "-validate", "-legacyinterp")
	if vm != tree {
		t.Errorf("-legacyinterp changed the output:\nvm:\n%s\ntree:\n%s", vm, tree)
	}
}

func TestDumpIR(t *testing.T) {
	out := runCmd(t, "-bench", "fir", "-dump-ir")
	for _, want := range []string{"module fir", "func main", "load"} {
		if !strings.Contains(out, want) {
			t.Errorf("-dump-ir missing %q", want)
		}
	}
}

func TestDumpSched(t *testing.T) {
	out := runCmd(t, "-bench", "fir", "-scheme", "gdp", "-dump-sched", "fir", "-objects=false")
	if !strings.Contains(out, "schedule of fir") || !strings.Contains(out, "block b0:") {
		t.Errorf("-dump-sched output wrong:\n%s", out)
	}
}

func TestCompileFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	src := "global int g[8];\nfunc main() int { int i; int s = 0; for (i = 0; i < 8; i = i + 1) { g[i] = i; s = s + g[i]; } return s; }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "-src", path, "-scheme", "unified")
	if !strings.Contains(out, "checksum 28") {
		t.Errorf("file compile output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{},                                  // no input
		{"-bench", "nope"},                  // unknown benchmark
		{"-bench", "fir", "-scheme", "bad"}, // unknown scheme
		{"-bench", "fir", "-clusters", "3"}, // unsupported cluster count
		{"-bench", "fir", "-src", "x"},      // both inputs
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("gdpc %v: expected error", args)
		}
	}
}
